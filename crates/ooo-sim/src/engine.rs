//! The out-of-order dataflow scheduling engine.

use std::collections::VecDeque;

use mallacc_cache::{AccessKind, AccessResult, Hierarchy};

use crate::sample::{Phase, Sampler, SamplingPlan, SamplingReport, FF_SCALE};
use crate::trace::{Component, OpMeta, StallBreakdown, StallReason, TraceSink, UopEvent};
use crate::uop::{OpKind, Reg, Uop};

/// Load-issue ports per cycle (Haswell: ports 2 and 3).
pub const LOAD_PORTS: usize = 2;

/// Store-data ports per cycle (Haswell: port 4).
pub const STORE_PORTS: usize = 1;

/// Slots in a [`PortTracker`] ring. Must exceed the scan window: issue
/// scans start at most 1000 cycles behind the watermark and never travel
/// past it by more than one cycle (a slot beyond the watermark has never
/// been filled), so live occupancy spans under 1002 distinct cycles.
const PORT_RING: usize = 2_048;

/// Tracks a per-cycle issue-port budget (Haswell: [`LOAD_PORTS`] load
/// ports, [`STORE_PORTS`] store port). Finds the earliest cycle at or
/// after `ready` with spare capacity.
///
/// Cycle-tagged ring buffer: slot `cycle % PORT_RING` holds the count for
/// `cycle` iff its tag matches; a mismatched tag reads as zero. Writes at
/// cycle `c` make any later touch of `c - PORT_RING` impossible (scans
/// start at `watermark - 1000` and the watermark is monotone), so stale
/// tags are never misread — this is exactly the dense-window semantics of
/// a map pruned far behind the frontier, without per-access hashing.
#[derive(Debug)]
struct PortTracker {
    tags: Vec<u64>,
    counts: Vec<u8>,
    watermark: u64,
}

impl Default for PortTracker {
    fn default() -> Self {
        Self {
            tags: vec![0; PORT_RING],
            counts: vec![0; PORT_RING],
            watermark: 0,
        }
    }
}

impl PortTracker {
    fn issue_at(&mut self, ready: u64, cap: u8) -> u64 {
        let mut cycle = ready.max(self.watermark.saturating_sub(1_000));
        loop {
            let slot = (cycle % PORT_RING as u64) as usize;
            if self.tags[slot] != cycle {
                self.tags[slot] = cycle;
                self.counts[slot] = 1;
                break;
            }
            if self.counts[slot] < cap {
                self.counts[slot] += 1;
                break;
            }
            cycle += 1;
        }
        if cycle > self.watermark {
            self.watermark = cycle;
        }
        cycle
    }
}

/// Key marking an empty [`LineMap`] slot. Unreachable as a real key:
/// keys are cache-line numbers (`addr >> DEP_LINE_SHIFT`), which cannot
/// exceed `u64::MAX >> 6`.
const LINE_EMPTY: u64 = u64::MAX;

/// Open-addressed cache-line → completion-cycle map for store→load
/// forwarding. Exactly a hash map specialised to `u64` keys: the std map's
/// DoS-resistant hashing was the simulator's dispatch hot spot, and store
/// forwarding needs neither resistance nor removal.
#[derive(Debug)]
struct LineMap {
    keys: Vec<u64>,
    vals: Vec<u64>,
    len: usize,
}

impl Default for LineMap {
    fn default() -> Self {
        Self {
            keys: vec![LINE_EMPTY; 1_024],
            vals: vec![0; 1_024],
            len: 0,
        }
    }
}

impl LineMap {
    /// Fibonacci-hash start slot; the table size is a power of two.
    fn slot(&self, key: u64) -> usize {
        let shift = 64 - self.keys.len().trailing_zeros();
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> shift) as usize
    }

    fn get(&self, key: u64) -> Option<u64> {
        let mask = self.keys.len() - 1;
        let mut i = self.slot(key);
        loop {
            match self.keys[i] {
                k if k == key => return Some(self.vals[i]),
                LINE_EMPTY => return None,
                _ => i = (i + 1) & mask,
            }
        }
    }

    fn insert(&mut self, key: u64, val: u64) {
        debug_assert_ne!(key, LINE_EMPTY);
        let mask = self.keys.len() - 1;
        let mut i = self.slot(key);
        loop {
            match self.keys[i] {
                k if k == key => {
                    self.vals[i] = val;
                    return;
                }
                LINE_EMPTY => break,
                _ => i = (i + 1) & mask,
            }
        }
        self.keys[i] = key;
        self.vals[i] = val;
        self.len += 1;
        if self.len * 4 >= self.keys.len() * 3 {
            self.grow();
        }
    }

    fn grow(&mut self) {
        let old_keys = std::mem::replace(&mut self.keys, vec![LINE_EMPTY; 0]);
        let old_vals = std::mem::take(&mut self.vals);
        let cap = old_keys.len() * 2;
        self.keys = vec![LINE_EMPTY; cap];
        self.vals = vec![0; cap];
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != LINE_EMPTY {
                self.insert(k, v);
            }
        }
    }
}

/// Core width/size parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Micro-ops fetched/renamed per cycle.
    pub fetch_width: u32,
    /// Micro-ops retired per cycle.
    pub commit_width: u32,
    /// Reorder-buffer entries; fetch stalls when the window is full.
    pub rob_size: u32,
    /// Cycles from branch resolution to fetching down the right path.
    pub mispredict_penalty: u32,
    /// Front-end depth: cycles between fetching a µop and its earliest issue.
    pub frontend_latency: u32,
}

impl CoreConfig {
    /// An aggressive Haswell-like core: 4-wide fetch and commit, 192-entry
    /// ROB, 15-cycle mispredict penalty, 5-stage front end.
    pub fn haswell() -> Self {
        Self {
            fetch_width: 4,
            commit_width: 4,
            rob_size: 192,
            mispredict_penalty: 15,
            frontend_latency: 5,
        }
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::haswell()
    }
}

/// When one micro-op moved through the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UopTiming {
    /// Cycle the µop was fetched.
    pub fetch: u64,
    /// Cycle all its sources were available.
    pub ready: u64,
    /// Cycle its result was produced.
    pub complete: u64,
    /// Cycle it retired (in order).
    pub commit: u64,
    /// For loads/stores/prefetches: the hierarchy's answer. For prefetches,
    /// `complete` is early (senior-store-queue style) and
    /// `ready + mem.latency` is when the data actually arrives.
    pub mem: Option<AccessResult>,
}

impl UopTiming {
    /// For memory µops, the cycle the cache line actually arrives
    /// (`ready + mem latency`); otherwise `complete`.
    pub fn data_arrival(&self) -> u64 {
        match self.mem {
            Some(m) => self.ready + m.latency as u64,
            None => self.complete,
        }
    }
}

/// Aggregate execution statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoreStats {
    /// Micro-ops pushed.
    pub uops: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Prefetches executed.
    pub prefetches: u64,
    /// Branches executed.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
}

/// A retirement-side CPI stack: every cycle of forward commit progress is
/// attributed to the constraint that bound it. Sums to the total elapsed
/// cycles, so `stack.memory / stack.total()` is "the fraction of time the
/// machine was waiting on loads" — the lens behind the paper's §3.2/§3.3
/// cost analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CpiStack {
    /// Commit advanced smoothly (retirement-width bound): useful work.
    pub base: u64,
    /// Commit waited on a load's data.
    pub memory: u64,
    /// Commit waited on a non-memory execution latency (ALU chains,
    /// accelerator ops, modelled syscalls).
    pub execute: u64,
    /// Commit waited on the front end (fetch groups, taken branches,
    /// misprediction redirects).
    pub frontend: u64,
}

impl CpiStack {
    /// Total attributed cycles.
    pub fn total(&self) -> u64 {
        self.base + self.memory + self.execute + self.frontend
    }
}

/// The out-of-order core model.
///
/// Push µops in program order; the engine returns each µop's pipeline timing
/// immediately (the model is analytic per µop, so no separate "run" step is
/// needed). Loads and stores access the owned [`Hierarchy`] in program
/// order.
///
/// # Example
///
/// ```
/// use mallacc_ooo::{CoreConfig, Engine, Uop};
/// use mallacc_cache::Hierarchy;
///
/// let mut cpu = Engine::new(CoreConfig::haswell(), Hierarchy::default());
/// let v = cpu.alloc_reg();
/// let w = cpu.alloc_reg();
/// cpu.mem_mut().warm(0x100);
/// let t1 = cpu.push(Uop::load(0x100, v, &[]));
/// let t2 = cpu.push(Uop::alu(1, Some(w), &[v]));
/// assert!(t2.ready >= t1.complete); // dataflow dependency respected
/// ```
#[derive(Debug)]
pub struct Engine {
    config: CoreConfig,
    mem: Hierarchy,
    /// Completion cycle of each virtual register (index = Reg.0).
    reg_complete: Vec<u64>,
    /// Commit times of the in-flight window, bounded by `rob_size`.
    rob: VecDeque<u64>,
    /// Fetch bookkeeping: cycle and how many µops were fetched in it.
    fetch_cycle: u64,
    fetched_this_cycle: u32,
    /// Earliest cycle the next µop may fetch (branch redirects push this).
    fetch_barrier: u64,
    /// Commit bookkeeping (in-order, width-limited).
    commit_cycle: u64,
    committed_this_cycle: u32,
    last_commit: u64,
    /// Completion time of the most recent store to each cache line, for
    /// store→load memory dependencies (forwarding).
    store_complete: LineMap,
    load_ports: PortTracker,
    store_ports: PortTracker,
    stats: CoreStats,
    cpi: CpiStack,
    /// Cycles explicitly skipped via [`Engine::skip_to_cycle`] (never
    /// attributed to the CPI stack).
    skipped: u64,
    /// Ambient component tag stamped on every event (set by the driver).
    component: Component,
    /// Retirement sequence counter for trace events.
    retired: u64,
    /// Optional observability sink; `None` costs nothing per µop.
    sink: Option<Box<dyn TraceSink>>,
    /// Sampled-execution controller; `None` runs everything detailed.
    sampling: Option<Sampler>,
}

/// Cache-line granularity used for memory dependence tracking.
const DEP_LINE_SHIFT: u32 = 6;

impl Engine {
    /// Creates a core with a cold pipeline at cycle 0.
    pub fn new(config: CoreConfig, mem: Hierarchy) -> Self {
        assert!(config.fetch_width >= 1 && config.commit_width >= 1 && config.rob_size >= 1);
        Self {
            config,
            mem,
            reg_complete: Vec::new(),
            rob: VecDeque::with_capacity(config.rob_size as usize),
            fetch_cycle: 0,
            fetched_this_cycle: 0,
            fetch_barrier: 0,
            commit_cycle: 0,
            committed_this_cycle: 0,
            last_commit: 0,
            store_complete: LineMap::default(),
            load_ports: PortTracker::default(),
            store_ports: PortTracker::default(),
            stats: CoreStats::default(),
            cpi: CpiStack::default(),
            skipped: 0,
            component: Component::App,
            retired: 0,
            sink: None,
            sampling: None,
        }
    }

    /// The configuration this core was built with.
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// Read-only view of the memory hierarchy.
    pub fn mem(&self) -> &Hierarchy {
        &self.mem
    }

    /// Mutable access to the hierarchy (warming, antagonist eviction).
    pub fn mem_mut(&mut self) -> &mut Hierarchy {
        &mut self.mem
    }

    /// Allocates a fresh virtual register.
    pub fn alloc_reg(&mut self) -> Reg {
        let r = Reg(self.reg_complete.len() as u32);
        self.reg_complete.push(0);
        r
    }

    /// Marks a register's value as becoming available at `cycle` without an
    /// explicit producer µop (used to model live-in values).
    ///
    /// # Panics
    ///
    /// Panics if `reg` was not allocated by this engine.
    pub fn set_reg_available_at(&mut self, reg: Reg, cycle: u64) {
        self.reg_complete[reg.0 as usize] = cycle;
    }

    /// Commit time of the most recently pushed µop.
    pub fn now(&self) -> u64 {
        self.last_commit
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CoreStats {
        self.stats
    }

    /// The retirement-side CPI stack accumulated so far. In sampled mode
    /// the fast-forwarded slices are included (extrapolated at the last
    /// measured window's rates), so `total() + skipped_cycles() == now()`
    /// holds in every mode.
    pub fn cpi_stack(&self) -> CpiStack {
        self.cpi
    }

    /// Cycles explicitly skipped via [`Engine::skip_to_cycle`].
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped
    }

    /// Switches between full detailed execution (`None`) and sampled
    /// execution under `plan`. Resets any previous sampling state; the
    /// timing/CPI state accumulated so far is kept.
    pub fn set_sampling(&mut self, plan: Option<SamplingPlan>) {
        self.flush_ff();
        self.sampling = plan.map(Sampler::new);
    }

    /// The sampling plan in force, if any.
    pub fn sampling_plan(&self) -> Option<SamplingPlan> {
        self.sampling.as_ref().map(|s| s.plan)
    }

    /// The sampled run's measurement report: closed windows, warmup and
    /// fast-forward totals. `None` unless sampling is enabled.
    pub fn sampling_report(&self) -> Option<SamplingReport> {
        self.sampling.as_ref().map(|s| s.report())
    }

    /// Installs an observability sink. Replaces any existing sink.
    pub fn set_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.flush_ff();
        self.sink = Some(sink);
    }

    /// Removes and returns the installed sink, if any.
    pub fn take_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.flush_ff();
        self.sink.take()
    }

    /// Whether a sink is installed.
    pub fn has_sink(&self) -> bool {
        self.sink.is_some()
    }

    /// Sets the component tag stamped on subsequently pushed µops.
    pub fn set_component(&mut self, component: Component) {
        self.component = component;
    }

    /// The component tag currently in force.
    pub fn component(&self) -> Component {
        self.component
    }

    /// Notifies the sink that an operation window opens at the current
    /// retirement cycle. No-op without a sink.
    pub fn trace_op_begin(&mut self) {
        self.flush_ff();
        let now = self.last_commit;
        if let Some(sink) = &mut self.sink {
            sink.on_op_begin(now);
        }
    }

    /// Notifies the sink that an operation window closed. No-op without a
    /// sink.
    pub fn trace_op_end(&mut self, op: &OpMeta<'_>) {
        self.flush_ff();
        if let Some(sink) = &mut self.sink {
            sink.on_op_end(op);
        }
    }

    /// Closes a pending fast-forward region: re-syncs the pipeline
    /// bookkeeping to the fast-forwarded time (exactly as an explicit time
    /// skip would) and delivers the batched sink notification.
    fn flush_ff(&mut self) {
        let Some(s) = self.sampling.as_mut() else {
            return;
        };
        let Some((uops, from)) = s.pending_ff.take() else {
            return;
        };
        let to = self.last_commit;
        if to > self.fetch_cycle {
            self.fetch_cycle = to;
            self.fetched_this_cycle = 0;
        }
        self.fetch_barrier = self.fetch_barrier.max(to);
        if to > self.commit_cycle {
            self.commit_cycle = to;
            self.committed_this_cycle = 0;
        }
        if let Some(sink) = &mut self.sink {
            sink.on_fast_forward(uops, from, to);
        }
    }

    fn fetch_slot(&mut self, earliest: u64) -> u64 {
        let mut cycle = self.fetch_cycle.max(earliest).max(self.fetch_barrier);
        if cycle > self.fetch_cycle {
            self.fetch_cycle = cycle;
            self.fetched_this_cycle = 0;
        }
        if self.fetched_this_cycle >= self.config.fetch_width {
            cycle += 1;
            self.fetch_cycle = cycle;
            self.fetched_this_cycle = 0;
        }
        self.fetched_this_cycle += 1;
        cycle
    }

    fn commit_slot(&mut self, earliest: u64) -> u64 {
        let mut cycle = self.commit_cycle.max(earliest);
        if cycle > self.commit_cycle {
            self.commit_cycle = cycle;
            self.committed_this_cycle = 0;
        }
        if self.committed_this_cycle >= self.config.commit_width {
            cycle += 1;
            self.commit_cycle = cycle;
            self.committed_this_cycle = 0;
        }
        self.committed_this_cycle += 1;
        cycle
    }

    /// Pushes the next µop in program order and returns its timing.
    ///
    /// Without sampling (or under a degenerate plan) every µop runs
    /// through the detailed pipeline model. Under a non-degenerate
    /// [`SamplingPlan`] the µop is dispatched by phase: detailed for
    /// warmup and measured windows, functional fast-forward otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the µop names a register that was never allocated.
    pub fn push(&mut self, uop: Uop) -> UopTiming {
        let Some(s) = self.sampling.as_mut() else {
            return self.push_detailed(uop);
        };
        if s.plan.is_degenerate() {
            return self.push_detailed(uop);
        }
        match s.next_phase() {
            Phase::Warmup => {
                self.flush_ff();
                self.push_detailed(uop)
            }
            Phase::Measured { closes } => {
                self.flush_ff();
                let cpi = self.cpi;
                let s = self.sampling.as_mut().expect("sampler in force");
                if !s.window_open {
                    s.open_window(cpi);
                }
                let t = self.push_detailed(uop);
                if closes {
                    let cpi = self.cpi;
                    self.sampling
                        .as_mut()
                        .expect("sampler in force")
                        .close_window(cpi);
                }
                t
            }
            Phase::FastForward => self.push_ff(uop),
        }
    }

    /// The functional fast-forward path: performs every memory access (so
    /// cache, TLB and store-forwarding state stay bit-identical to a full
    /// run) and updates execution statistics and dataflow bookkeeping, but
    /// skips all ROB/port/fetch/stall modelling. Simulated time advances
    /// at the last measured window's per-slice CPI rates.
    fn push_ff(&mut self, uop: Uop) -> UopTiming {
        self.stats.uops += 1;
        let mut mem = None;
        match uop.kind {
            OpKind::Alu { .. } => {}
            OpKind::Load { addr } => {
                self.stats.loads += 1;
                mem = Some(self.mem.access(addr, AccessKind::Read));
            }
            OpKind::Store { addr } => {
                self.stats.stores += 1;
                mem = Some(self.mem.access(addr, AccessKind::Write));
                // No store_complete insert: a fast-forwarded store completes
                // at the commit clock, and flush_ff raises the next detailed
                // µop's fetch cycle past that clock before any load can look
                // the line up — the entry could never raise a ready time, so
                // probing the (large, host-cache-hostile) table here is pure
                // overhead.
            }
            OpKind::Prefetch { addr } => {
                self.stats.prefetches += 1;
                mem = Some(self.mem.access(addr, AccessKind::Prefetch));
            }
            OpKind::Branch { mispredicted, .. } => {
                self.stats.branches += 1;
                if mispredicted {
                    self.stats.mispredicts += 1;
                }
            }
        }
        let prev = self.last_commit;
        let s = self.sampling.as_mut().expect("ff requires a sampler");
        let mut adv = [0u64; 4];
        for ((accum, rate), out) in s.ff_accum.iter_mut().zip(s.ff_rate).zip(adv.iter_mut()) {
            *accum += rate;
            *out = *accum / FF_SCALE;
            *accum %= FF_SCALE;
        }
        let advance: u64 = adv.iter().sum();
        s.ff_uops += 1;
        s.ff_cycles += advance;
        match &mut s.pending_ff {
            Some((n, _)) => *n += 1,
            p @ None => *p = Some((1, prev)),
        }
        // Charge the emitted whole cycles slice by slice, so the CPI stack
        // keeps summing exactly to attributed time in sampled mode too.
        self.cpi.base += adv[0];
        self.cpi.memory += adv[1];
        self.cpi.execute += adv[2];
        self.cpi.frontend += adv[3];
        let now = prev + advance;
        self.last_commit = now;
        if let Some(dst) = uop.dst {
            self.reg_complete[dst.0 as usize] = now;
        }
        self.retired += 1;
        UopTiming {
            fetch: now,
            ready: now,
            complete: now,
            commit: now,
            mem,
        }
    }

    /// The full detailed pipeline model behind [`Engine::push`].
    fn push_detailed(&mut self, uop: Uop) -> UopTiming {
        self.stats.uops += 1;

        // ROB gating: the window holds at most rob_size µops; fetching a new
        // one must wait for the oldest in-flight µop to commit.
        let rob_gate = if self.rob.len() >= self.config.rob_size as usize {
            self.rob.pop_front().expect("rob non-empty")
        } else {
            0
        };
        // How far ROB occupancy pushed fetch beyond where the front end
        // would otherwise be — the ROB-full slice of the stall breakdown.
        let rob_delay = rob_gate.saturating_sub(self.fetch_cycle.max(self.fetch_barrier));

        let fetch = self.fetch_slot(rob_gate);

        // Dataflow readiness: sources plus front-end depth.
        let mut ready = fetch + self.config.frontend_latency as u64;
        for src in uop.srcs.iter().flatten() {
            let t = self.reg_complete[src.0 as usize];
            ready = ready.max(t);
        }

        let mut mem = None;
        let (complete, commit_gate) = match uop.kind {
            OpKind::Alu { latency } => {
                let c = ready + latency as u64;
                (c, c)
            }
            OpKind::Load { addr } => {
                self.stats.loads += 1;
                // Memory dependence: a load cannot see data before the last
                // store to its line has produced it (forwarding).
                if let Some(s) = self.store_complete.get(addr >> DEP_LINE_SHIFT) {
                    ready = ready.max(s);
                }
                let issue = self.load_ports.issue_at(ready, LOAD_PORTS as u8);
                let r = self.mem.access(addr, AccessKind::Read);
                mem = Some(r);
                let c = issue + r.latency as u64;
                (c, c)
            }
            OpKind::Store { addr } => {
                self.stats.stores += 1;
                let issue = self.store_ports.issue_at(ready, STORE_PORTS as u8);
                let r = self.mem.access(addr, AccessKind::Write);
                mem = Some(r);
                // Senior store queue: the store completes and may retire one
                // cycle after its operands are ready; the cache update
                // happens in the background.
                let c = issue + 1;
                self.store_complete.insert(addr >> DEP_LINE_SHIFT, c);
                (c, c)
            }
            OpKind::Prefetch { addr } => {
                self.stats.prefetches += 1;
                let issue = self.load_ports.issue_at(ready, LOAD_PORTS as u8);
                let r = self.mem.access(addr, AccessKind::Prefetch);
                mem = Some(r);
                // Like a store: commits without waiting for the data.
                let c = issue + 1;
                (c, c)
            }
            OpKind::Branch {
                mispredicted,
                taken,
                penalty,
            } => {
                self.stats.branches += 1;
                let c = ready + 1;
                if mispredicted {
                    self.stats.mispredicts += 1;
                    let pen = penalty.unwrap_or(self.config.mispredict_penalty);
                    self.fetch_barrier = self.fetch_barrier.max(c + pen as u64);
                } else if taken {
                    // A taken branch ends its fetch group: the front end
                    // resteers and resumes at the target next cycle.
                    self.fetch_cycle = fetch + 1;
                    self.fetched_this_cycle = 0;
                }
                (c, c)
            }
        };

        if let Some(dst) = uop.dst {
            self.reg_complete[dst.0 as usize] = complete;
        }

        // In-order commit: cannot retire before the previous µop, nor before
        // this µop's own completion.
        let prev_commit = self.last_commit;
        let commit = self.commit_slot(commit_gate.max(prev_commit));
        self.last_commit = commit;
        self.rob.push_back(commit);

        // Stall attribution: the cycles this µop moved retirement forward,
        // charged to whatever bound it. The stalled window (completion
        // trailing the previous retirement) is covered by walking the µop's
        // own timeline backwards from completion — execution/memory, then
        // the wait for operands, then ROB gating, then the front end — each
        // phase capped by what is left, so the slices sum to `advance`
        // exactly. The remainder is width-limited useful work.
        let advance = commit.saturating_sub(prev_commit);
        let mut stall = StallBreakdown::new();
        if advance > 0 {
            let stalled = commit_gate.saturating_sub(prev_commit).min(advance);
            stall.add(StallReason::Base, advance - stalled);
            let mut rest = stalled;
            let take = |span: u64, rest: &mut u64| -> u64 {
                let t = span.min(*rest);
                *rest -= t;
                t
            };
            let exec = take(complete.saturating_sub(ready), &mut rest);
            let exec_reason = match (uop.kind, mem) {
                (OpKind::Load { .. }, Some(m)) => StallReason::for_level(m.level),
                _ => StallReason::Execute,
            };
            stall.add(exec_reason, exec);
            let frontend_done = fetch + self.config.frontend_latency as u64;
            let dataflow = take(ready.saturating_sub(frontend_done), &mut rest);
            stall.add(StallReason::Dataflow, dataflow);
            stall.add(StallReason::RobFull, take(rob_delay, &mut rest));
            stall.add(StallReason::Frontend, rest);
        }
        // The CPI stack is the coarse projection of the same breakdown, so
        // the two can never drift apart.
        self.cpi.base += stall.get(StallReason::Base);
        self.cpi.memory += stall.memory();
        self.cpi.execute += stall.get(StallReason::Execute);
        self.cpi.frontend += stall.get(StallReason::Dataflow)
            + stall.get(StallReason::RobFull)
            + stall.get(StallReason::Frontend);

        let timing = UopTiming {
            fetch,
            ready,
            complete,
            commit,
            mem,
        };
        let seq = self.retired;
        self.retired += 1;
        if let Some(sink) = &mut self.sink {
            sink.on_retire(&UopEvent {
                seq,
                kind: uop.kind,
                component: self.component,
                timing,
                stall,
            });
        }
        timing
    }

    /// Pushes a sequence of µops, returning the timing of the last one.
    ///
    /// # Panics
    ///
    /// Panics if `uops` is empty.
    pub fn push_all<I: IntoIterator<Item = Uop>>(&mut self, uops: I) -> UopTiming {
        let mut last = None;
        for u in uops {
            last = Some(self.push(u));
        }
        last.expect("push_all requires at least one uop")
    }

    /// Advances fetch to at least `cycle` (models time passing between
    /// allocator calls while the application runs).
    pub fn skip_to_cycle(&mut self, cycle: u64) {
        self.flush_ff();
        let from = self.last_commit;
        if cycle > self.fetch_cycle {
            self.fetch_cycle = cycle;
            self.fetched_this_cycle = 0;
        }
        self.fetch_barrier = self.fetch_barrier.max(cycle);
        self.last_commit = self.last_commit.max(cycle);
        if cycle > self.commit_cycle {
            self.commit_cycle = cycle;
            self.committed_this_cycle = 0;
        }
        let to = self.last_commit;
        if to > from {
            self.skipped += to - from;
            if let Some(sink) = &mut self.sink {
                sink.on_skip(from, to);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        Engine::new(CoreConfig::haswell(), Hierarchy::default())
    }

    #[test]
    fn independent_alus_pack_by_fetch_width() {
        let mut cpu = engine();
        // 8 independent 1-cycle ALU ops on a 4-wide machine: fetched over
        // two cycles.
        let mut timings = Vec::new();
        for _ in 0..8 {
            let d = cpu.alloc_reg();
            timings.push(cpu.push(Uop::alu(1, Some(d), &[])));
        }
        assert_eq!(timings[0].fetch, 0);
        assert_eq!(timings[3].fetch, 0);
        assert_eq!(timings[4].fetch, 1);
        assert_eq!(timings[7].fetch, 1);
    }

    #[test]
    fn dependent_chain_serialises() {
        let mut cpu = engine();
        let mut prev: Option<Reg> = None;
        let mut last = None;
        for _ in 0..10 {
            let d = cpu.alloc_reg();
            let srcs: Vec<Reg> = prev.into_iter().collect();
            last = Some(cpu.push(Uop::alu(3, Some(d), &srcs)));
            prev = Some(d);
        }
        let t = last.unwrap();
        // 10 ops × 3 cycles on the dataflow chain.
        assert!(t.complete >= 30);
    }

    #[test]
    fn load_latency_comes_from_hierarchy() {
        let mut cpu = engine();
        let d = cpu.alloc_reg();
        let t = cpu.push(Uop::load(0x100, d, &[]));
        assert_eq!(t.mem.unwrap().latency, 230); // cold DRAM + page walk
        let d2 = cpu.alloc_reg();
        let t2 = cpu.push(Uop::load(0x100, d2, &[]));
        assert_eq!(t2.mem.unwrap().latency, 4); // now L1 (and TLB)
    }

    #[test]
    fn store_commits_without_waiting_for_memory() {
        let mut cpu = engine();
        let v = cpu.alloc_reg();
        cpu.push(Uop::alu(1, Some(v), &[]));
        let t = cpu.push(Uop::store(0x2000, &[v]));
        // Cold store to DRAM, yet it retires almost immediately.
        assert!(t.commit < 20, "store stalled commit: {t:?}");
    }

    #[test]
    fn load_miss_stalls_commit_of_younger_uops() {
        let mut cpu = engine();
        let d = cpu.alloc_reg();
        let tl = cpu.push(Uop::load(0x3000, d, &[])); // cold miss
        let e = cpu.alloc_reg();
        let ta = cpu.push(Uop::alu(1, Some(e), &[])); // independent
                                                      // The ALU op completes early but cannot retire before the load.
        assert!(ta.complete < tl.complete);
        assert!(ta.commit >= tl.commit);
    }

    #[test]
    fn mispredict_redirects_fetch() {
        let mut cpu = engine();
        let f = cpu.alloc_reg();
        cpu.push(Uop::alu(1, Some(f), &[]));
        let tb = cpu.push(Uop::branch(true, &[f]));
        let d = cpu.alloc_reg();
        let tn = cpu.push(Uop::alu(1, Some(d), &[]));
        assert!(tn.fetch >= tb.complete + 15);
    }

    #[test]
    fn predicted_branch_is_cheap() {
        let mut cpu = engine();
        let f = cpu.alloc_reg();
        cpu.push(Uop::alu(1, Some(f), &[]));
        cpu.push(Uop::branch(false, &[f]));
        let d = cpu.alloc_reg();
        let tn = cpu.push(Uop::alu(1, Some(d), &[]));
        assert_eq!(tn.fetch, 0, "predicted branch should not stall fetch");
    }

    #[test]
    fn rob_limits_runahead() {
        let mut cpu = Engine::new(
            CoreConfig {
                rob_size: 4,
                ..CoreConfig::haswell()
            },
            Hierarchy::default(),
        );
        // A long-latency cold load at the head of the window...
        let d = cpu.alloc_reg();
        let tl = cpu.push(Uop::load(0x4000, d, &[]));
        // ...followed by many independent ALU ops. With a 4-entry ROB the
        // 6th op cannot even fetch until the load commits.
        let mut last = None;
        for _ in 0..8 {
            let r = cpu.alloc_reg();
            last = Some(cpu.push(Uop::alu(1, Some(r), &[])));
        }
        assert!(last.unwrap().fetch >= tl.commit);
    }

    #[test]
    fn commit_is_width_limited_and_monotone() {
        let mut cpu = engine();
        let mut commits = Vec::new();
        for _ in 0..12 {
            let d = cpu.alloc_reg();
            commits.push(cpu.push(Uop::alu(1, Some(d), &[])).commit);
        }
        for w in commits.windows(2) {
            assert!(w[1] >= w[0]);
        }
        // At most 4 retire in any single cycle.
        for &c in &commits {
            assert!(commits.iter().filter(|&&x| x == c).count() <= 4);
        }
    }

    #[test]
    fn prefetch_data_arrival_is_later_than_commit() {
        let mut cpu = engine();
        let t = cpu.push(Uop::prefetch(0x5000, &[]));
        assert!(t.commit <= t.ready + 2);
        assert_eq!(t.data_arrival(), t.ready + 230);
    }

    #[test]
    fn skip_to_cycle_moves_time_forward() {
        let mut cpu = engine();
        cpu.skip_to_cycle(1000);
        let d = cpu.alloc_reg();
        let t = cpu.push(Uop::alu(1, Some(d), &[]));
        assert!(t.fetch >= 1000);
        assert!(t.commit >= 1000);
    }

    #[test]
    fn live_in_registers() {
        let mut cpu = engine();
        let live = cpu.alloc_reg();
        cpu.set_reg_available_at(live, 500);
        let d = cpu.alloc_reg();
        let t = cpu.push(Uop::alu(1, Some(d), &[live]));
        assert!(t.ready >= 500);
    }

    #[test]
    fn stats_accumulate() {
        let mut cpu = engine();
        let d = cpu.alloc_reg();
        cpu.push(Uop::load(0x0, d, &[]));
        cpu.push(Uop::store(0x40, &[d]));
        cpu.push(Uop::prefetch(0x80, &[]));
        cpu.push(Uop::branch(true, &[d]));
        let s = cpu.stats();
        assert_eq!(s.uops, 4);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(s.prefetches, 1);
        assert_eq!(s.branches, 1);
        assert_eq!(s.mispredicts, 1);
    }

    #[test]
    fn cpi_stack_sums_to_elapsed_cycles() {
        let mut cpu = engine();
        let mut prev = None;
        for i in 0..200u64 {
            let d = cpu.alloc_reg();
            let t = if i % 7 == 0 {
                cpu.push(Uop::load(i * 64, d, &[]))
            } else {
                let srcs: Vec<Reg> = prev.into_iter().collect();
                cpu.push(Uop::alu(2, Some(d), &srcs))
            };
            let _ = t;
            prev = Some(d);
        }
        let stack = cpu.cpi_stack();
        assert_eq!(stack.total(), cpu.now(), "attribution must cover time");
        assert!(stack.memory > 0, "cold loads must charge memory cycles");
        assert!(stack.execute > 0, "alu chain must charge execute cycles");
    }

    #[test]
    fn memory_bound_code_charges_memory() {
        let mut cpu = engine();
        let mut prev: Option<Reg> = None;
        for i in 0..32u64 {
            let d = cpu.alloc_reg();
            let srcs: Vec<Reg> = prev.into_iter().collect();
            cpu.push(Uop::load(i * 1_000_000, d, &srcs));
            prev = Some(d);
        }
        let stack = cpu.cpi_stack();
        assert!(
            stack.memory as f64 > 0.8 * stack.total() as f64,
            "dependent cold loads should dominate: {stack:?}"
        );
    }

    #[derive(Debug, Default)]
    struct CollectSink {
        attributed: u64,
        events: u64,
        idle: u64,
    }

    impl crate::trace::TraceSink for CollectSink {
        fn on_retire(&mut self, event: &crate::trace::UopEvent) {
            self.attributed += event.stall.total();
            self.events += 1;
        }
        fn on_skip(&mut self, from: u64, to: u64) {
            self.idle += to - from;
        }
        fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
            self
        }
    }

    fn mixed_stream(cpu: &mut Engine) -> Vec<UopTiming> {
        let mut timings = Vec::new();
        let mut prev: Option<Reg> = None;
        for i in 0..300u64 {
            let d = cpu.alloc_reg();
            let t = match i % 11 {
                0 => cpu.push(Uop::load(i * 64, d, &[])),
                1 => {
                    let srcs: Vec<Reg> = prev.into_iter().collect();
                    cpu.push(Uop::load(i * 1_024, d, &srcs))
                }
                2 => cpu.push(Uop::store(i * 64, &[])),
                3 => cpu.push(Uop::branch(i % 33 == 3, &[])),
                4 => cpu.push(Uop::prefetch(i * 4_096, &[])),
                _ => {
                    let srcs: Vec<Reg> = prev.into_iter().collect();
                    cpu.push(Uop::alu(1 + (i % 3) as u32, Some(d), &srcs))
                }
            };
            if i % 17 == 0 {
                let now = cpu.now();
                cpu.skip_to_cycle(now + 40);
            }
            prev = Some(d);
            timings.push(t);
        }
        timings
    }

    #[test]
    fn per_uop_stall_breakdowns_conserve_elapsed_cycles() {
        let mut cpu = engine();
        cpu.set_sink(Box::new(CollectSink::default()));
        mixed_stream(&mut cpu);
        let sink = cpu.take_sink().expect("sink installed");
        let sink = sink.into_any().downcast::<CollectSink>().unwrap();
        assert_eq!(sink.events, 300);
        assert_eq!(
            sink.attributed + sink.idle,
            cpu.now(),
            "per-µop breakdowns plus skips must cover every elapsed cycle"
        );
        // The coarse CPI stack is a projection of the same breakdown.
        assert_eq!(cpu.cpi_stack().total() + sink.idle, cpu.now());
    }

    #[test]
    fn sink_is_observation_only() {
        let mut with = engine();
        with.set_sink(Box::new(CollectSink::default()));
        let a = mixed_stream(&mut with);
        let mut without = engine();
        let b = mixed_stream(&mut without);
        assert_eq!(a, b, "attaching a sink must not change any timing");
        assert_eq!(with.now(), without.now());
        assert_eq!(with.cpi_stack(), without.cpi_stack());
    }

    #[test]
    fn rob_full_cycles_are_attributed() {
        #[derive(Debug, Default)]
        struct ReasonSink(StallBreakdown);
        impl crate::trace::TraceSink for ReasonSink {
            fn on_retire(&mut self, event: &crate::trace::UopEvent) {
                self.0.merge(&event.stall);
            }
            fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
                self
            }
        }
        let mut cpu = Engine::new(
            CoreConfig {
                rob_size: 4,
                ..CoreConfig::haswell()
            },
            Hierarchy::default(),
        );
        cpu.set_sink(Box::new(ReasonSink::default()));
        let d = cpu.alloc_reg();
        cpu.push(Uop::load(0x4000, d, &[])); // cold miss heads the window
        for _ in 0..16 {
            let r = cpu.alloc_reg();
            cpu.push(Uop::alu(1, Some(r), &[]));
        }
        let sink = cpu.take_sink().unwrap().into_any();
        let b = sink.downcast::<ReasonSink>().unwrap().0;
        assert!(
            b.get(StallReason::RobFull) > 0,
            "tiny ROB behind a cold miss must gate fetch: {b:?}"
        );
        assert!(b.get(StallReason::MemDram) > 0, "cold miss charges DRAM");
        assert_eq!(b.total(), cpu.now());
    }

    /// A long, statistically stationary µop stream: dependent ALU work,
    /// strided loads over a bounded working set, stores, branches and the
    /// occasional mispredict — the shape of allocator fast-path code.
    fn long_stream(cpu: &mut Engine, n: u64) {
        let mut prev: Option<Reg> = None;
        for i in 0..n {
            let d = cpu.alloc_reg();
            match i % 13 {
                0 => {
                    cpu.push(Uop::load((i % 512) * 64, d, &[]));
                }
                1 => {
                    let srcs: Vec<Reg> = prev.into_iter().collect();
                    cpu.push(Uop::load((i % 256) * 64 + 0x10_0000, d, &srcs));
                }
                2 => {
                    cpu.push(Uop::store((i % 128) * 64, &[]));
                }
                3 => {
                    cpu.push(Uop::branch(i % 91 == 3, &[]));
                }
                _ => {
                    let srcs: Vec<Reg> = prev.into_iter().collect();
                    cpu.push(Uop::alu(1 + (i % 3) as u32, Some(d), &srcs));
                }
            }
            if i % 37 == 0 {
                let now = cpu.now();
                cpu.skip_to_cycle(now + 25);
            }
            prev = Some(d);
        }
    }

    #[test]
    fn degenerate_plan_reproduces_full_run_exactly() {
        let mut full = engine();
        long_stream(&mut full, 3_000);
        let mut sampled = engine();
        // period <= warmup + detailed: every µop stays detailed.
        sampled.set_sampling(Some(crate::SamplingPlan::new(64, 64, 128).unwrap()));
        long_stream(&mut sampled, 3_000);
        assert_eq!(full.now(), sampled.now());
        assert_eq!(full.cpi_stack(), sampled.cpi_stack());
        assert_eq!(full.stats(), sampled.stats());
        let report = sampled.sampling_report().unwrap();
        assert_eq!(report.ff_uops, 0, "degenerate plans never fast-forward");
    }

    #[test]
    fn sampled_cpi_stack_conserves_elapsed_cycles() {
        let mut cpu = engine();
        cpu.set_sampling(Some(crate::SamplingPlan::new(32, 128, 1_024).unwrap()));
        long_stream(&mut cpu, 20_000);
        assert_eq!(
            cpu.cpi_stack().total() + cpu.skipped_cycles(),
            cpu.now(),
            "attributed + skipped must cover elapsed time in sampled mode"
        );
        let r = cpu.sampling_report().unwrap();
        assert!(r.ff_uops > 10_000, "most µops must fast-forward: {r:?}");
        assert!(r.windows.len() >= 15, "every period closes a window");
        assert_eq!(
            r.ff_uops + r.warmup_uops + r.measured_uops(),
            cpu.stats().uops
        );
    }

    #[test]
    fn sampled_execution_statistics_match_full_run() {
        let mut full = engine();
        long_stream(&mut full, 20_000);
        let mut sampled = engine();
        sampled.set_sampling(Some(crate::SamplingPlan::new(32, 128, 1_024).unwrap()));
        long_stream(&mut sampled, 20_000);
        assert_eq!(full.stats(), sampled.stats());
    }

    #[test]
    fn sampled_cpi_tracks_full_cpi() {
        let mut full = engine();
        long_stream(&mut full, 40_000);
        let mut sampled = engine();
        sampled.set_sampling(Some(crate::SamplingPlan::default_plan()));
        long_stream(&mut sampled, 40_000);
        let f = full.cpi_stack().total() as f64;
        let s = sampled.cpi_stack().total() as f64;
        let err = (s - f).abs() / f;
        assert!(
            err < 0.02,
            "sampled attributed cycles {s} vs full {f}: {:.2}% off",
            err * 100.0
        );
    }

    #[test]
    fn sampled_sink_accounting_still_covers_elapsed_time() {
        let mut cpu = engine();
        cpu.set_sampling(Some(crate::SamplingPlan::new(16, 64, 512).unwrap()));
        cpu.set_sink(Box::new(CollectSink::default()));
        long_stream(&mut cpu, 10_000);
        let sink = cpu.take_sink().expect("sink installed");
        let sink = sink.into_any().downcast::<CollectSink>().unwrap();
        // Fast-forward regions fold into on_skip by default, so the
        // skip-aware invariant holds under sampling too.
        assert_eq!(sink.attributed + sink.idle, cpu.now());
        assert!(sink.events < 10_000, "ff µops must not emit retire events");
    }

    #[test]
    fn set_sampling_none_resumes_detailed_execution() {
        let mut cpu = engine();
        cpu.set_sampling(Some(crate::SamplingPlan::new(0, 16, 256).unwrap()));
        long_stream(&mut cpu, 2_000);
        cpu.set_sampling(None);
        assert!(cpu.sampling_plan().is_none());
        let before = cpu.stats().uops;
        let d = cpu.alloc_reg();
        let t = cpu.push(Uop::load(0x42_0000, d, &[]));
        assert!(t.mem.is_some(), "detailed µops carry memory results");
        assert_eq!(cpu.stats().uops, before + 1);
    }

    #[test]
    fn ipc_of_microbenchmark_like_code_is_high() {
        // Mirrors the paper's observation that back-to-back allocation
        // microbenchmark code reaches IPC ≈ 3 on a 4-wide core: mostly
        // independent short ops with an occasional dependent load.
        let mut cpu = engine();
        for i in 0..64u64 {
            cpu.mem_mut().warm(i * 64);
        }
        let n = 400;
        let mut last = 0;
        for i in 0..n {
            let d = cpu.alloc_reg();
            let t = if i % 4 == 0 {
                cpu.push(Uop::load((i as u64 % 64) * 64, d, &[]))
            } else {
                cpu.push(Uop::alu(1, Some(d), &[]))
            };
            last = t.commit;
        }
        let ipc = n as f64 / last as f64;
        assert!(ipc > 2.0, "ipc too low: {ipc}");
    }
}
