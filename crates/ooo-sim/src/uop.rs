//! The micro-op vocabulary the core model executes.

use mallacc_cache::Addr;

/// A virtual (SSA) register name.
///
/// The fast-path programs are generated dynamically with every destination
/// written exactly once, so a register's completion time fully describes its
/// dependency — no renaming or false-hazard tracking is needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub(crate) u32);

impl Reg {
    /// The raw register index (useful for debugging traces).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// What a micro-op does, and what its latency depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A register-to-register operation with a fixed execution latency
    /// (ALU ops, address generation, accelerator CAM lookups, ...).
    Alu {
        /// Execution latency in cycles (≥ 1).
        latency: u32,
    },
    /// A demand load from the simulated memory hierarchy. Its latency is
    /// whatever the hierarchy answers at issue time.
    Load {
        /// The simulated byte address.
        addr: Addr,
    },
    /// A store. Write-allocate in the hierarchy; completes in one cycle from
    /// the core's perspective and retires through the senior store queue, so
    /// it never stalls commit.
    Store {
        /// The simulated byte address.
        addr: Addr,
    },
    /// A prefetch (software, or the accelerator's `mcnxtprefetch`). Commits
    /// immediately like a store, but the returned timing records when the
    /// data actually arrives so the malloc cache can block on it.
    Prefetch {
        /// The simulated byte address.
        addr: Addr,
    },
    /// A branch. If `mispredicted`, fetch is redirected `mispredict_penalty`
    /// cycles after the branch resolves. A *taken* branch (calls, returns,
    /// unconditional jumps, loop back-edges) ends its fetch group even when
    /// predicted — the front end resteers to the new target next cycle.
    Branch {
        /// Whether this dynamic instance was mispredicted.
        mispredicted: bool,
        /// Whether the branch is taken (ends the fetch group).
        taken: bool,
        /// Redirect penalty override for mispredictions; `None` uses the
        /// core's configured penalty. Short-range branches whose target is
        /// already in the µop cache resteer faster than the full pipeline
        /// depth.
        penalty: Option<u32>,
    },
}

/// One dynamic micro-op: an [`OpKind`], up to three source registers, and an
/// optional destination register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Uop {
    /// The operation.
    pub kind: OpKind,
    /// Source operands; ready time is the max of their completion times.
    pub srcs: [Option<Reg>; 3],
    /// Destination register (written exactly once — SSA).
    pub dst: Option<Reg>,
}

fn srcs_from(slice: &[Reg]) -> [Option<Reg>; 3] {
    assert!(slice.len() <= 3, "uops take at most three sources");
    let mut srcs = [None; 3];
    for (dst, &s) in srcs.iter_mut().zip(slice) {
        *dst = Some(s);
    }
    srcs
}

impl Uop {
    /// A fixed-latency ALU op `dst = f(srcs)`.
    ///
    /// # Panics
    ///
    /// Panics if `latency` is zero or more than three sources are given.
    pub fn alu(latency: u32, dst: Option<Reg>, srcs: &[Reg]) -> Self {
        assert!(latency >= 1, "ALU latency must be at least one cycle");
        Self {
            kind: OpKind::Alu { latency },
            srcs: srcs_from(srcs),
            dst,
        }
    }

    /// A load `dst = mem[addr]`, with address-generation dependencies `srcs`.
    ///
    /// # Panics
    ///
    /// Panics if more than three sources are given.
    pub fn load(addr: Addr, dst: Reg, srcs: &[Reg]) -> Self {
        Self {
            kind: OpKind::Load { addr },
            srcs: srcs_from(srcs),
            dst: Some(dst),
        }
    }

    /// A store `mem[addr] = value`, depending on `srcs` (address + data).
    ///
    /// # Panics
    ///
    /// Panics if more than three sources are given.
    pub fn store(addr: Addr, srcs: &[Reg]) -> Self {
        Self {
            kind: OpKind::Store { addr },
            srcs: srcs_from(srcs),
            dst: None,
        }
    }

    /// A prefetch of `addr`, depending on `srcs`.
    ///
    /// # Panics
    ///
    /// Panics if more than three sources are given.
    pub fn prefetch(addr: Addr, srcs: &[Reg]) -> Self {
        Self {
            kind: OpKind::Prefetch { addr },
            srcs: srcs_from(srcs),
            dst: None,
        }
    }

    /// A conditional, not-taken branch depending on `srcs` (typically a
    /// flags register).
    ///
    /// # Panics
    ///
    /// Panics if more than three sources are given.
    pub fn branch(mispredicted: bool, srcs: &[Reg]) -> Self {
        Self {
            kind: OpKind::Branch {
                mispredicted,
                taken: false,
                penalty: None,
            },
            srcs: srcs_from(srcs),
            dst: None,
        }
    }

    /// A conditional branch with an explicit misprediction penalty
    /// (short-range fallback branches that resteer from the µop cache).
    ///
    /// # Panics
    ///
    /// Panics if more than three sources are given.
    pub fn branch_penalized(mispredicted: bool, penalty: u32, srcs: &[Reg]) -> Self {
        Self {
            kind: OpKind::Branch {
                mispredicted,
                taken: false,
                penalty: Some(penalty),
            },
            srcs: srcs_from(srcs),
            dst: None,
        }
    }

    /// A taken, correctly-predicted control transfer (call, return,
    /// unconditional jump): costs a fetch-group break but no flush.
    ///
    /// # Panics
    ///
    /// Panics if more than three sources are given.
    pub fn jump(srcs: &[Reg]) -> Self {
        Self {
            kind: OpKind::Branch {
                mispredicted: false,
                taken: true,
                penalty: None,
            },
            srcs: srcs_from(srcs),
            dst: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_populate_sources() {
        let r = |i| Reg(i);
        let u = Uop::alu(2, Some(r(9)), &[r(1), r(2)]);
        assert_eq!(u.srcs, [Some(r(1)), Some(r(2)), None]);
        assert_eq!(u.dst, Some(r(9)));
        assert_eq!(u.kind, OpKind::Alu { latency: 2 });
    }

    #[test]
    #[should_panic(expected = "at most three sources")]
    fn too_many_sources() {
        let r = |i| Reg(i);
        Uop::alu(1, None, &[r(0), r(1), r(2), r(3)]);
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_latency_alu_rejected() {
        Uop::alu(0, None, &[]);
    }

    #[test]
    fn display_reg() {
        assert_eq!(Reg(7).to_string(), "v7");
    }
}
