//! Micro-op-level out-of-order core timing model for the Mallacc
//! reproduction.
//!
//! The paper evaluates Mallacc on XIOSim, a cycle-level x86 simulator
//! configured like an Intel Haswell and validated against real hardware
//! (Table 1, mean error 6.3 %). Reproducing a full x86 simulator is out of
//! scope for a Rust port (there is no mature cycle-accurate x86 ecosystem to
//! build on), but the paper's *results* depend on a narrow set of
//! microarchitectural effects over a ~40-instruction kernel:
//!
//! * dataflow latency of dependent load chains (the free-list `head`/`next`
//!   pops),
//! * overlap of independent work in a 4-wide out-of-order window,
//! * in-order commit stalling behind long-latency load misses,
//! * stores retiring through a senior store queue without stalling,
//! * branch-misprediction redirects.
//!
//! [`Engine`] models exactly those effects: callers push a dynamic stream of
//! [`Uop`]s in program order; each µop's *ready* time is the maximum of its
//! source operands' completion times (programs are generated in SSA form, so
//! there are no false dependencies), loads get their latency from the
//! [`mallacc_cache::Hierarchy`], fetch is width-limited and gated by ROB
//! occupancy, and commit is in-order and width-limited.
//!
//! # Example
//!
//! ```
//! use mallacc_ooo::{CoreConfig, Engine, Uop};
//! use mallacc_cache::Hierarchy;
//!
//! let mut cpu = Engine::new(CoreConfig::haswell(), Hierarchy::default());
//! let a = cpu.alloc_reg();
//! let b = cpu.alloc_reg();
//! cpu.push(Uop::alu(1, Some(a), &[]));        // a = ...
//! let t = cpu.push(Uop::load(0x1000, b, &[a])); // b = mem[a] (cold miss)
//! assert!(t.complete > 200); // DRAM latency on the critical path
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod sample;
pub mod trace;
mod uop;

pub use engine::{CoreConfig, CoreStats, CpiStack, Engine, UopTiming, LOAD_PORTS, STORE_PORTS};
pub use sample::{SamplingPlan, SamplingReport, WindowSample};
pub use trace::{Component, OpMeta, StallBreakdown, StallReason, TraceSink, UopEvent};
pub use uop::{OpKind, Reg, Uop};
