//! SMARTS/interval-style sampled execution: cadence plans, the per-engine
//! sampling controller, and the measurement report.
//!
//! Full detailed simulation prices every µop through the out-of-order
//! pipeline model. That fidelity is only needed *statistically*: allocator
//! fast paths are short, periodic kernels, so a small measured fraction
//! predicts the whole run. A [`SamplingPlan`] divides the µop stream into
//! fixed-length periods of three phases, in SMARTS order:
//!
//! 1. **warmup** — detailed execution, unmeasured. Re-primes the pipeline
//!    and re-touches the hot cache lines after a fast-forward region, so
//!    the measured window does not see functional-warming artefacts.
//! 2. **detailed window** — detailed execution, measured. The window's
//!    attributed cycles (CPI-stack delta, which excludes explicit time
//!    skips) become one sample and set the extrapolation rates.
//! 3. **fast-forward** — functional execution only. Architectural state
//!    that feeds *functional* decisions stays bit-identical (the driver's
//!    heap, malloc cache and branch history live outside the engine;
//!    inside it, register/statistics bookkeeping still advances), while
//!    pipeline bookkeeping is skipped and simulated time advances at the
//!    last measured window's per-slice CPI rates.
//!
//! A sampled run additionally opens with `startup_uops` of detailed,
//! unmeasured execution (one full period by default) before the periodic
//! cadence begins. Cold-start transients — the initial burst of compulsory
//! cache misses — are therefore *simulated*, not extrapolated: without the
//! startup interval the very first measured window prices the cold caches
//! and its inflated CPI is stretched over the first fast-forward region,
//! which is the classic sampling cold-start bias.
//!
//! Degenerate plans (`period <= warmup + detailed`) never reach phase 3
//! and therefore reproduce full detailed runs exactly — the property the
//! sampled-vs-full differential suites pin.

use crate::engine::CpiStack;

/// Fixed-point scale for fast-forward cycle accumulation: rates are kept
/// in micro-cycles per µop, so extrapolation rounding error is bounded by
/// one cycle per million fast-forwarded µops per slice.
pub(crate) const FF_SCALE: u64 = 1_000_000;

/// Cadence of a sampled run, in µops: every `period` pushed µops run
/// `warmup_uops` detailed-but-unmeasured, then `detailed_uops` measured,
/// then fast-forward to the end of the period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SamplingPlan {
    /// Detailed µops executed before each measured window, unmeasured
    /// (pipeline and cache re-warming after a fast-forward region).
    pub warmup_uops: u64,
    /// Measured detailed µops per window.
    pub detailed_uops: u64,
    /// Total µops per period; `period - warmup_uops - detailed_uops` are
    /// fast-forwarded (none, if the plan is degenerate).
    pub period: u64,
    /// Detailed, unmeasured µops executed once before the periodic cadence
    /// starts, so cold-start transients are simulated rather than
    /// extrapolated. [`SamplingPlan::new`] defaults this to one period.
    pub startup_uops: u64,
}

impl SamplingPlan {
    /// Builds a plan, validating the phase lengths.
    ///
    /// # Errors
    ///
    /// Rejects zero-length measured windows and zero-length periods (a
    /// period *shorter* than warmup + detailed is allowed: it is the
    /// degenerate, run-everything-detailed plan).
    pub fn new(warmup_uops: u64, detailed_uops: u64, period: u64) -> Result<Self, String> {
        if detailed_uops == 0 {
            return Err("sampling plan needs a non-empty detailed window".to_string());
        }
        if period == 0 {
            return Err("sampling plan needs a non-zero period".to_string());
        }
        Ok(Self {
            warmup_uops,
            detailed_uops,
            period,
            startup_uops: period,
        })
    }

    /// Overrides the startup interval (0 disables it).
    pub fn with_startup(mut self, startup_uops: u64) -> Self {
        self.startup_uops = startup_uops;
        self
    }

    /// The default cadence: 384 µops of warmup and a 1024-µop measured
    /// window every 16384 µops (8.6 % detailed), after a 16384-µop
    /// detailed startup interval. The warmup length matters more than the
    /// window count: the post-fast-forward pipeline transient outlasts
    /// shorter warmups on some macro workloads (465.tonto's full-scale
    /// error halves going from 192 to 384+), while halving the window
    /// count only widens the confidence interval.
    pub fn default_plan() -> Self {
        Self {
            warmup_uops: 384,
            detailed_uops: 1_024,
            period: 16_384,
            startup_uops: 16_384,
        }
    }

    /// True when the period is covered entirely by warmup + detailed
    /// execution: no µop is ever fast-forwarded and the run is exactly a
    /// full detailed run.
    pub fn is_degenerate(&self) -> bool {
        self.period <= self.warmup_uops + self.detailed_uops
    }

    /// Fraction of each period executed in detail (warmup + measured).
    pub fn detailed_fraction(&self) -> f64 {
        let det = (self.warmup_uops + self.detailed_uops).min(self.period);
        det as f64 / self.period as f64
    }

    /// Parses `"W:D:P"` (startup defaults to one period) or `"W:D:P:S"`
    /// with an explicit startup interval (e.g. `"192:512:8192:0"`).
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed field.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let parts: Vec<&str> = spec.split(':').collect();
        if parts.len() != 3 && parts.len() != 4 {
            return Err(format!(
                "bad sampling plan {spec:?}: use <warmup>:<detailed>:<period>[:<startup>]"
            ));
        }
        let field = |s: &str, name: &str| -> Result<u64, String> {
            s.trim()
                .parse::<u64>()
                .map_err(|_| format!("bad sampling plan {name} {s:?}"))
        };
        let plan = Self::new(
            field(parts[0], "warmup")?,
            field(parts[1], "detailed")?,
            field(parts[2], "period")?,
        )?;
        if let Some(s) = parts.get(3) {
            Ok(plan.with_startup(field(s, "startup")?))
        } else {
            Ok(plan)
        }
    }

    /// Canonical form; `parse` round-trips it. Prints `"W:D:P"` when the
    /// startup interval has its default length (one period), `"W:D:P:S"`
    /// otherwise.
    pub fn canonical_string(&self) -> String {
        if self.startup_uops == self.period {
            format!(
                "{}:{}:{}",
                self.warmup_uops, self.detailed_uops, self.period
            )
        } else {
            format!(
                "{}:{}:{}:{}",
                self.warmup_uops, self.detailed_uops, self.period, self.startup_uops
            )
        }
    }
}

/// One closed measured window: how many µops it retired and the cycles
/// attributed to them (time skips excluded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSample {
    /// Measured µops in the window.
    pub uops: u64,
    /// Attributed cycles those µops account for.
    pub cycles: u64,
}

impl WindowSample {
    /// The window's cycles-per-µop.
    pub fn cpi(&self) -> f64 {
        self.cycles as f64 / self.uops as f64
    }
}

/// What a sampled run measured and extrapolated, as returned by
/// [`Engine::sampling_report`](crate::Engine::sampling_report).
#[derive(Debug, Clone, PartialEq)]
pub struct SamplingReport {
    /// The plan the run executed under.
    pub plan: SamplingPlan,
    /// Every closed measured window, in execution order. Feed the
    /// per-window CPIs to `mallacc_stats::mean_ci95` for the confidence
    /// interval on the extrapolated CPI.
    pub windows: Vec<WindowSample>,
    /// Detailed µops spent on (unmeasured) warmup, including the startup
    /// interval.
    pub warmup_uops: u64,
    /// Fast-forwarded µops.
    pub ff_uops: u64,
    /// Cycles charged during fast-forward (extrapolated at measured
    /// window rates).
    pub ff_cycles: u64,
}

impl SamplingReport {
    /// Total measured µops across all closed windows.
    pub fn measured_uops(&self) -> u64 {
        self.windows.iter().map(|w| w.uops).sum()
    }

    /// Total attributed cycles across all closed windows.
    pub fn measured_cycles(&self) -> u64 {
        self.windows.iter().map(|w| w.cycles).sum()
    }

    /// Pooled CPI over the measured windows (0 when nothing measured).
    pub fn measured_cpi(&self) -> f64 {
        let u = self.measured_uops();
        if u == 0 {
            0.0
        } else {
            self.measured_cycles() as f64 / u as f64
        }
    }

    /// Per-window CPI samples, the input shape of the CI helper.
    pub fn window_cpis(&self) -> Vec<f64> {
        self.windows.iter().map(|w| w.cpi()).collect()
    }
}

/// Which execution phase the next µop falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Detailed, unmeasured.
    Warmup,
    /// Detailed, measured; `closes` marks the window's last µop. The
    /// engine opens the window lazily on the first measured µop (tracked
    /// by [`Sampler::window_open`]), so a one-µop window still works.
    Measured {
        /// True when the window must be closed after this µop retires.
        closes: bool,
    },
    /// Functional fast-forward.
    FastForward,
}

/// Per-engine sampling state: period position, window accumulation and the
/// fast-forward extrapolation rates.
#[derive(Debug)]
pub(crate) struct Sampler {
    pub(crate) plan: SamplingPlan,
    /// Detailed startup µops still to run before the periodic cadence.
    startup_left: u64,
    /// µop index within the current period.
    pos: u64,
    /// CPI stack snapshot when the current window opened.
    window_start: CpiStack,
    /// Whether a measured window is currently open.
    pub(crate) window_open: bool,
    /// Closed window samples.
    pub(crate) windows: Vec<WindowSample>,
    /// Per-slice fast-forward rates in [`FF_SCALE`]ths of a cycle per µop:
    /// base, memory, execute, frontend — from the last closed window.
    ///
    /// Deliberately *not* pooled over window history: allocator runs have
    /// long CPI trends (heap and cache warm-in, free lists filling), and a
    /// cumulative mean lags those trends, which measured as a +35–80 %
    /// systematic bias on the macro workloads. Last-window rates make each
    /// period a self-contained stratum, so trend error cancels per period.
    pub(crate) ff_rate: [u64; 4],
    /// Per-slice fractional-cycle accumulators.
    pub(crate) ff_accum: [u64; 4],
    /// Totals for the report.
    pub(crate) warmup_uops: u64,
    pub(crate) ff_uops: u64,
    pub(crate) ff_cycles: u64,
    /// Batched sink notification for a fast-forward region: µop count and
    /// the retirement cycle it started from.
    pub(crate) pending_ff: Option<(u64, u64)>,
}

impl Sampler {
    pub(crate) fn new(plan: SamplingPlan) -> Self {
        Self {
            plan,
            startup_left: plan.startup_uops,
            pos: 0,
            window_start: CpiStack::default(),
            window_open: false,
            windows: Vec::new(),
            ff_rate: [0; 4],
            ff_accum: [0; 4],
            warmup_uops: 0,
            ff_uops: 0,
            ff_cycles: 0,
            pending_ff: None,
        }
    }

    /// Classifies the next µop and advances the period position. The
    /// degenerate-plan check lives in the caller (degenerate plans never
    /// construct a sampler in the hot path).
    ///
    /// The startup interval is detailed *and unmeasured*: a window inside
    /// it would price cold compulsory misses and stretch that outlier CPI
    /// over its fast-forward region. The rates therefore only ever come
    /// from post-startup (warm) windows.
    pub(crate) fn next_phase(&mut self) -> Phase {
        if self.startup_left > 0 {
            self.startup_left -= 1;
            self.warmup_uops += 1;
            return Phase::Warmup;
        }
        let pos = self.pos;
        self.pos += 1;
        if self.pos >= self.plan.period {
            self.pos = 0;
        }
        let warm_end = self.plan.warmup_uops;
        let meas_end = warm_end + self.plan.detailed_uops;
        if pos < warm_end {
            self.warmup_uops += 1;
            Phase::Warmup
        } else if pos >= meas_end {
            Phase::FastForward
        } else {
            Phase::Measured {
                closes: pos + 1 == meas_end,
            }
        }
    }

    /// Records the CPI stack at window open.
    pub(crate) fn open_window(&mut self, cpi: CpiStack) {
        self.window_start = cpi;
        self.window_open = true;
    }

    /// Closes the window against the current CPI stack: stores the sample
    /// and refreshes the fast-forward rates.
    pub(crate) fn close_window(&mut self, cpi: CpiStack) {
        self.window_open = false;
        let uops = self.plan.detailed_uops;
        let d = [
            cpi.base - self.window_start.base,
            cpi.memory - self.window_start.memory,
            cpi.execute - self.window_start.execute,
            cpi.frontend - self.window_start.frontend,
        ];
        let cycles = d.iter().sum();
        self.windows.push(WindowSample { uops, cycles });
        for (rate, slice) in self.ff_rate.iter_mut().zip(d) {
            *rate = slice * FF_SCALE / uops;
        }
    }

    pub(crate) fn report(&self) -> SamplingReport {
        SamplingReport {
            plan: self.plan,
            windows: self.windows.clone(),
            warmup_uops: self.warmup_uops,
            ff_uops: self.ff_uops,
            ff_cycles: self.ff_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_parse_round_trips() {
        let p = SamplingPlan::parse("384:1024:16384").unwrap();
        assert_eq!(p, SamplingPlan::default_plan());
        assert_eq!(SamplingPlan::parse(&p.canonical_string()).unwrap(), p);
        assert!(!p.is_degenerate());
        assert!((p.detailed_fraction() - 1408.0 / 16384.0).abs() < 1e-12);
    }

    #[test]
    fn plan_rejects_malformed_specs() {
        assert!(SamplingPlan::parse("1:2").is_err());
        assert!(SamplingPlan::parse("a:2:3").is_err());
        assert!(SamplingPlan::parse("1:0:3").is_err());
        assert!(SamplingPlan::parse("1:2:0").is_err());
        assert!(SamplingPlan::new(0, 1, 1).unwrap().is_degenerate());
    }

    #[test]
    fn degenerate_plans_cover_the_period() {
        let p = SamplingPlan::new(100, 100, 150).unwrap();
        assert!(p.is_degenerate());
        assert_eq!(p.detailed_fraction(), 1.0);
    }

    #[test]
    fn phase_sequence_follows_the_plan() {
        let plan = SamplingPlan::new(2, 3, 8).unwrap().with_startup(0);
        let mut s = Sampler::new(plan);
        let seq: Vec<Phase> = (0..17).map(|_| s.next_phase()).collect();
        use Phase::*;
        let open = Measured { closes: false };
        let close = Measured { closes: true };
        assert_eq!(
            seq,
            vec![
                Warmup,
                Warmup,
                open,
                open,
                close,
                FastForward,
                FastForward,
                FastForward,
                // second period
                Warmup,
                Warmup,
                open,
                open,
                close,
                FastForward,
                FastForward,
                FastForward,
                Warmup,
            ]
        );
        assert_eq!(s.warmup_uops, 5);
    }

    #[test]
    fn zero_warmup_measures_immediately() {
        let plan = SamplingPlan::new(0, 2, 4).unwrap().with_startup(0);
        let mut s = Sampler::new(plan);
        assert_eq!(s.next_phase(), Phase::Measured { closes: false });
        assert_eq!(s.next_phase(), Phase::Measured { closes: true });
        assert_eq!(s.next_phase(), Phase::FastForward);
    }

    #[test]
    fn single_uop_window_opens_and_closes_on_one_uop() {
        let plan = SamplingPlan::new(1, 1, 4).unwrap().with_startup(0);
        let mut s = Sampler::new(plan);
        assert_eq!(s.next_phase(), Phase::Warmup);
        assert_eq!(s.next_phase(), Phase::Measured { closes: true });
    }

    #[test]
    fn startup_interval_runs_detailed_and_unmeasured() {
        // new() defaults the startup interval to one period; no window
        // opens inside it (cold-start CPI must not seed the rates).
        let plan = SamplingPlan::new(1, 2, 8).unwrap();
        assert_eq!(plan.startup_uops, 8);
        let mut s = Sampler::new(plan);
        for _ in 0..8 {
            assert_eq!(s.next_phase(), Phase::Warmup);
        }
        // Startup exhausted: the first real period begins.
        assert_eq!(s.next_phase(), Phase::Warmup);
        assert_eq!(s.next_phase(), Phase::Measured { closes: false });
        assert_eq!(s.next_phase(), Phase::Measured { closes: true });
        assert_eq!(s.next_phase(), Phase::FastForward);
        assert_eq!(s.warmup_uops, 9);
    }

    #[test]
    fn ff_rates_track_the_latest_window() {
        // Rates follow the most recent window (no pooling across history
        // — see the field comment on `ff_rate` for the measured why).
        let plan = SamplingPlan::new(0, 4, 16).unwrap().with_startup(0);
        let mut s = Sampler::new(plan);
        s.open_window(CpiStack::default());
        s.close_window(CpiStack {
            base: 8,
            memory: 0,
            execute: 0,
            frontend: 0,
        });
        assert_eq!(s.ff_rate, [2 * FF_SCALE, 0, 0, 0]);
        let mid = CpiStack {
            base: 8,
            memory: 0,
            execute: 0,
            frontend: 0,
        };
        s.open_window(mid);
        s.close_window(CpiStack {
            base: 12,
            memory: 4,
            execute: 0,
            frontend: 0,
        });
        assert_eq!(s.ff_rate, [FF_SCALE, FF_SCALE, 0, 0]);
    }

    #[test]
    fn startup_round_trips_through_the_spec_string() {
        let p = SamplingPlan::parse("192:512:8192:0").unwrap();
        assert_eq!(p.startup_uops, 0);
        assert_eq!(p.canonical_string(), "192:512:8192:0");
        assert_eq!(SamplingPlan::parse(&p.canonical_string()).unwrap(), p);
        // Default startup (one period) stays in the three-field form.
        let q = SamplingPlan::parse("192:512:8192").unwrap();
        assert_eq!(q.startup_uops, 8192);
        assert_eq!(q.canonical_string(), "192:512:8192");
        assert!(SamplingPlan::parse("1:2:3:x").is_err());
    }

    #[test]
    fn window_sample_records_cpi_delta() {
        let plan = SamplingPlan::new(0, 4, 16).unwrap();
        let mut s = Sampler::new(plan);
        s.open_window(CpiStack {
            base: 10,
            memory: 5,
            execute: 0,
            frontend: 1,
        });
        s.close_window(CpiStack {
            base: 14,
            memory: 9,
            execute: 2,
            frontend: 1,
        });
        assert_eq!(
            s.windows,
            vec![WindowSample {
                uops: 4,
                cycles: 10
            }]
        );
        assert_eq!(s.ff_rate, [FF_SCALE, FF_SCALE, FF_SCALE / 2, 0]);
        let r = s.report();
        assert_eq!(r.measured_uops(), 4);
        assert_eq!(r.measured_cycles(), 10);
        assert!((r.measured_cpi() - 2.5).abs() < 1e-12);
        assert_eq!(r.window_cpis(), vec![2.5]);
    }
}
