//! Shared proptest strategies for the workspace's property suites.
//!
//! The allocator-differential, multi-core, exploration and validation test
//! suites all generate the same few shapes of random input: allocator op
//! streams, cross-thread churn, (cost, gain) point clouds, sweep
//! configuration points. Before this crate each suite carried its own
//! copy; they drifted (different size distributions, different weights)
//! and bug-reproducing generator tweaks had to be applied in several
//! places. The canonical versions live here; test files only add the
//! assertions.
//!
//! Everything returns `impl Strategy`, so suites can keep composing
//! (`prop_map`, weighting) on top of the shared bases.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use proptest::prelude::*;

use mallacc::SimMode;
use mallacc_explore::{AccelKind, ConfigPoint, RunScale, Substrate};
use mallacc_ooo::SamplingPlan;

/// One step of an allocator differential stream (replayed through both
/// functional allocator models in lockstep).
#[derive(Debug, Clone, Copy)]
pub enum DiffOp {
    /// Allocate `size` bytes on both allocators.
    Malloc {
        /// Requested size in bytes.
        size: u64,
    },
    /// Free the `index % live`-th live pair on both.
    Free {
        /// Selector into the live set (reduced modulo its length).
        index: u64,
        /// Use the sized-delete path.
        sized: bool,
    },
}

/// Strategy: a malloc/free stream mixing small (bin-served) and large
/// requests 3:1, with frees interleaved at the same weight as small
/// allocations. The distribution matters: it keeps several size classes
/// live at once while still exercising the large-object path.
pub fn arb_diff_stream(max_len: usize) -> impl Strategy<Value = Vec<DiffOp>> {
    let op = prop_oneof![
        3 => (1u64..4_096).prop_map(|size| DiffOp::Malloc { size }),
        1 => (8_192u64..600_000).prop_map(|size| DiffOp::Malloc { size }),
        3 => (any::<u64>(), any::<bool>()).prop_map(|(index, sized)| DiffOp::Free { index, sized }),
    ];
    prop::collection::vec(op, 1..max_len)
}

/// Strategy: cross-thread churn for an allocator with `threads` thread
/// caches. Each tuple is `(tid, size, selector, do_free, sized)`: thread
/// `tid` allocates `size` bytes, and if `do_free`, a *different* thread
/// (derived from `selector`) frees a victim from the live set — the
/// block-migration path the multi-core invariants guard.
pub fn arb_cross_thread_ops(
    threads: usize,
    max_len: usize,
) -> impl Strategy<Value = Vec<(usize, u64, u16, bool, bool)>> {
    prop::collection::vec(
        (
            0usize..threads,
            1u64..300_000,
            any::<u16>(),
            any::<bool>(),
            any::<bool>(),
        ),
        1..max_len,
    )
}

/// Strategy: an arbitrary set of finite `(cost, gain)` result points, the
/// input shape of the Pareto-frontier helpers.
pub fn arb_points(max_len: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((0.0f64..10_000.0, -100.0f64..100.0), 0..max_len)
}

/// Strategy: an arbitrary sampled-execution cadence. Draws warmup,
/// window, and period from ranges that keep the detailed fraction
/// meaningful (the window always fits in the period because the period
/// is drawn as a multiple of `warmup + detailed`), plus an occasional
/// zero-length startup interval — the degenerate corner the sampling
/// properties care about most.
pub fn arb_sampling_plan() -> impl Strategy<Value = SamplingPlan> {
    (
        0u64..=512,  // warmup µops (0 is legal: measure cold)
        1u64..=1024, // detailed window µops
        1u64..=8,    // period as a multiple of warmup + detailed
        0u64..=2,    // startup interval, in periods
    )
        .prop_map(|(warmup, detailed, factor, startup_periods)| {
            let period = (warmup + detailed).max(1) * factor;
            let plan = SamplingPlan::new(warmup, detailed, period)
                .expect("window and period are non-zero by construction");
            plan.with_startup(period * startup_periods)
        })
}

/// Strategy: an arbitrary sweep configuration point (cheap axes only —
/// consumers hash and compare these, they never run them).
pub fn arb_config_point() -> impl Strategy<Value = ConfigPoint> {
    (
        (
            1usize..=64,
            0u32..4,
            any::<bool>(),
            any::<bool>(),
            any::<bool>(),
            0usize..4,
            0usize..14,
            1usize..=8,
            any::<u64>(),
        ),
        0usize..4,
        1usize..=64,
        prop_oneof![
            2 => Just(SimMode::Full),
            1 => Just(SimMode::sampled_default()),
            1 => arb_sampling_plan().prop_map(SimMode::Sampled),
        ],
    )
        .prop_map(
            |(
                (
                    entries,
                    extra_latency,
                    prefetch,
                    index_opt,
                    sampling,
                    substrate,
                    workload,
                    cores,
                    seed,
                ),
                accel,
                queue_depth,
                sim,
            )| {
                ConfigPoint {
                    entries,
                    extra_latency,
                    prefetch,
                    index_opt,
                    sampling,
                    accel: AccelKind::ALL[accel],
                    queue_depth,
                    substrate: Substrate::ALL[substrate],
                    workload: mallacc_workloads::AnyWorkload::all_names()[workload].to_string(),
                    cores,
                    seed,
                    scale: RunScale::quick(),
                    sim,
                }
            },
        )
}

/// Parameters for one fleet scenario run, as drawn by
/// [`arb_fleet_params`]: which catalogue scenario to stream, on how many
/// cores, how many requests, and the arrival seed.
#[derive(Debug, Clone, Copy)]
pub struct FleetParams {
    /// A name from [`mallacc_fleet::Scenario::all`].
    pub scenario: &'static str,
    /// Simulated core count.
    pub cores: usize,
    /// Requests to issue.
    pub requests: u64,
    /// Arrival/request RNG seed.
    pub seed: u64,
}

/// Strategy: parameters for one fleet scenario run — any catalogue
/// scenario, mostly 1..=8 cores with occasional 16/32-core draws (the
/// lifted multicore cap), a request volume small enough that a property
/// case simulates in milliseconds, and an arbitrary seed.
pub fn arb_fleet_params() -> impl Strategy<Value = FleetParams> {
    let n = mallacc_fleet::Scenario::all().len();
    let cores = prop_oneof![
        4 => 1usize..=8,
        1 => (0usize..2).prop_map(|wide| if wide == 0 { 16 } else { 32 }),
    ];
    (0..n, cores, 4u64..48, any::<u64>()).prop_map(|(idx, cores, requests, seed)| FleetParams {
        scenario: mallacc_fleet::Scenario::all()[idx].name,
        cores,
        requests,
        seed,
    })
}

/// A naive reference heap interpreter: the malloc contract with no
/// allocator structure at all.
///
/// The differential suites replay every substrate's
/// [`GenericAlloc`](mallacc_substrate::GenericAlloc)/[`GenericFree`](mallacc_substrate::GenericFree)
/// outcomes through one of these. It knows nothing about size classes,
/// spans, or caches — just the laws any correct allocator must obey:
/// every block is rounded up (never down), live blocks never overlap,
/// and every free names a live block and recalls its exact rounded
/// size. Violations return `Err` with the offending addresses so a
/// shrunk proptest case reads like a bug report.
#[derive(Debug, Default)]
pub struct RefHeap {
    /// ptr → (requested, alloc_size) for every live block.
    live: std::collections::BTreeMap<u64, (u64, u64)>,
    /// Live pointers in allocation order. `pick` indexes this rather
    /// than the address-sorted map so that the same `DiffOp::Free`
    /// selector names the same *logical* block on every substrate —
    /// address layouts differ across allocators, allocation order
    /// does not.
    order: Vec<u64>,
}

impl RefHeap {
    /// An empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks and records one allocation outcome.
    pub fn on_alloc(&mut self, a: &mallacc_substrate::GenericAlloc) -> Result<(), String> {
        if a.ptr == 0 {
            return Err("allocator returned null".to_string());
        }
        if a.alloc_size < a.requested {
            return Err(format!(
                "under-allocation: requested {} got {}",
                a.requested, a.alloc_size
            ));
        }
        if let Some((&p, &(_, s))) = self.live.range(..=a.ptr).next_back() {
            if p + s > a.ptr {
                return Err(format!(
                    "overlap: new [{:#x},+{}) collides with live [{p:#x},+{s})",
                    a.ptr, a.alloc_size
                ));
            }
        }
        if let Some((&p, &(_, s))) = self.live.range(a.ptr..a.ptr + a.alloc_size).next() {
            return Err(format!(
                "overlap: new [{:#x},+{}) collides with live [{p:#x},+{s})",
                a.ptr, a.alloc_size
            ));
        }
        self.live.insert(a.ptr, (a.requested, a.alloc_size));
        self.order.push(a.ptr);
        Ok(())
    }

    /// Checks and records one free outcome.
    pub fn on_free(&mut self, f: &mallacc_substrate::GenericFree) -> Result<(), String> {
        self.order.retain(|&p| p != f.ptr);
        match self.live.remove(&f.ptr) {
            None => Err(format!("free of unknown block {:#x}", f.ptr)),
            Some((req, size)) if size != f.alloc_size => Err(format!(
                "size amnesia at {:#x}: allocated {size} (for request {req}), freed {}",
                f.ptr, f.alloc_size
            )),
            Some(_) => Ok(()),
        }
    }

    /// Live blocks currently tracked.
    pub fn live_blocks(&self) -> usize {
        self.live.len()
    }

    /// Sum of rounded sizes of live blocks.
    pub fn bytes_in_use(&self) -> u64 {
        self.live.values().map(|&(_, s)| s).sum()
    }

    /// The `selector % live`-th live pointer *in allocation order*,
    /// for replaying [`DiffOp::Free`] selectors; `None` when empty.
    pub fn pick(&self, selector: u64) -> Option<u64> {
        if self.order.is_empty() {
            return None;
        }
        let i = (selector % self.order.len() as u64) as usize;
        self.order.get(i).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::{ProptestConfig, TestRunner};

    fn sample<S: Strategy>(s: &S, seed: u32) -> S::Value {
        let runner = TestRunner::new(ProptestConfig::with_cases(1), "test-support-sample");
        let mut rng = runner.rng_for(seed, 0);
        s.generate(&mut rng)
    }

    #[test]
    fn diff_streams_are_nonempty_and_bounded() {
        let s = arb_diff_stream(50);
        for seed in 0..40 {
            let ops = sample(&s, seed);
            assert!(!ops.is_empty() && ops.len() < 50);
            for op in &ops {
                if let DiffOp::Malloc { size } = op {
                    assert!((1..600_000).contains(size));
                    assert!(!(4_096..8_192).contains(size), "dead band violated");
                }
            }
        }
    }

    #[test]
    fn ref_heap_catches_contract_violations() {
        use mallacc_substrate::{GenericAlloc, GenericFree};
        let a = |ptr: u64, requested: u64, alloc_size: u64| GenericAlloc {
            ptr,
            requested,
            alloc_size,
            fast: true,
            grew: false,
        };
        let mut h = RefHeap::new();
        h.on_alloc(&a(0x1000, 30, 32)).unwrap();
        assert!(h.on_alloc(&a(0, 8, 8)).is_err(), "null");
        assert!(h.on_alloc(&a(0x2000, 64, 48)).is_err(), "under-allocation");
        assert!(h.on_alloc(&a(0x1010, 16, 16)).is_err(), "overlap above");
        assert!(h.on_alloc(&a(0xff8, 16, 16)).is_err(), "overlap below");
        h.on_alloc(&a(0x1020, 16, 16)).unwrap();
        assert_eq!((h.live_blocks(), h.bytes_in_use()), (2, 48));
        assert_eq!(h.pick(3), Some(0x1020));
        let f = |ptr: u64, alloc_size: u64| GenericFree {
            ptr,
            alloc_size,
            fast: true,
        };
        assert!(h.on_free(&f(0x3000, 8)).is_err(), "unknown block");
        assert!(h.on_free(&f(0x1000, 16)).is_err(), "size amnesia");
        // The failed size-amnesia free still removed the block (it
        // reported the divergence); the second free must now be unknown.
        assert!(h.on_free(&f(0x1000, 32)).is_err(), "double free");
        h.on_free(&f(0x1020, 16)).unwrap();
        assert_eq!(h.live_blocks(), 0);
    }

    #[test]
    fn cross_thread_ops_respect_the_thread_bound() {
        let s = arb_cross_thread_ops(4, 60);
        for seed in 0..40 {
            for (tid, size, _, _, _) in sample(&s, seed) {
                assert!(tid < 4);
                assert!(size >= 1);
            }
        }
    }

    #[test]
    fn fleet_params_resolve_and_stay_bounded() {
        let s = arb_fleet_params();
        let mut saw_wide = false;
        for seed in 0..80 {
            let p = sample(&s, seed);
            assert!(mallacc_fleet::Scenario::by_name(p.scenario).is_some());
            assert!((1..=8).contains(&p.cores) || p.cores == 16 || p.cores == 32);
            saw_wide |= p.cores >= 16;
            assert!((4..48).contains(&p.requests));
        }
        assert!(saw_wide, "wide core counts must be drawn sometimes");
    }

    #[test]
    fn config_points_are_valid_and_hashable() {
        let s = arb_config_point();
        let mut saw_sampled = false;
        for seed in 0..40 {
            let p = sample(&s, seed);
            assert!(p.entries >= 1);
            assert_eq!(p.key(), p.clone().key());
            saw_sampled |= p.sim != SimMode::Full;
        }
        assert!(saw_sampled, "sampled sim modes must be drawn sometimes");
    }

    #[test]
    fn sampling_plans_are_well_formed_and_round_trip() {
        let s = arb_sampling_plan();
        let mut saw_degenerate = false;
        for seed in 0..80 {
            let p = sample(&s, seed);
            assert!(p.detailed_uops >= 1);
            assert!(p.period >= 1);
            assert_eq!(SamplingPlan::parse(&p.canonical_string()), Ok(p));
            saw_degenerate |= p.warmup_uops + p.detailed_uops >= p.period;
        }
        assert!(
            saw_degenerate,
            "degenerate (everything-detailed) plans must be drawn sometimes"
        );
    }
}
