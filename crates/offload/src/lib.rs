//! Allocation-offload helper core: the SpeedMalloc-style alternative to
//! Mallacc's in-core malloc cache.
//!
//! Where Mallacc shaves cycles off the malloc fast path *inside* the
//! out-of-order core, the offload design removes the allocator from the
//! main core entirely: each OoO core gets a tiny in-order **helper core**
//! attached over a bounded request/response queue. `malloc`/`free`/sized
//! delete become a request enqueue; the helper services requests in order
//! at its own (lower) IPC while the main core speculates past the
//! allocation result and only stalls if it consumes the pointer before the
//! response arrives — or if the queue is full.
//!
//! This crate is the pure timing model of that design, deliberately
//! independent of the allocator and core simulators so both the `mallacc`
//! driver and the validation harness can consume it:
//!
//! * [`OffloadConfig`] — queue depth, enqueue/dequeue/response latencies,
//!   helper IPC, the main core's speculation window, and whether the
//!   helper itself carries a malloc cache (the `both` mode);
//! * [`OffloadQueue`] — the deterministic integer queue/helper timing
//!   model, with [`OffloadStats`] conservation counters;
//! * [`RefOffloadQueue`] — a naive log-replaying reference interpreter of
//!   the same contract, for differential fuzzing;
//! * [`ServicePath`] and [`service_cycles`] — per-request helper-side
//!   service costs derived from the software fast/slow path µop counts;
//! * [`OffloadArea`] — silicon cost (helper core + queue SRAM), the
//!   expensive side of the Mallacc-vs-offload Pareto trade.
//!
//! The model is *performance-only*: functional allocation is still
//! performed by the (shared) allocator model, so an offload-mode heap is
//! bit-identical to a baseline heap by construction — a property the
//! differential proptests pin down.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod config;
mod cost;
mod queue;

pub use area::{offload_area_um2, OffloadArea, HELPER_CORE_UM2, QUEUE_ENTRY_BITS};
pub use config::{OffloadConfig, DEFAULT_QUEUE_DEPTH};
pub use cost::{service_cycles, service_uops, ServicePath};
pub use queue::{EnqueueOutcome, OffloadQueue, OffloadStats, RefOffloadQueue};
