//! Helper-side service costs per allocator request.
//!
//! The helper core runs the same software allocator paths the main core
//! would, minus call/return boundaries and argument spills (it sits in a
//! dedicated service loop), at in-order IPC. µop counts mirror the
//! baseline path emitters of the main simulator's program library:
//! size-class chain, sampler, free-list pop/push, list metadata, and the
//! central/span/OS/large slow paths. With `helper_mallacc` set the helper
//! carries its own malloc cache, which collapses the size-class chain and
//! the list pop/push to single accelerator ops — the `both` design.

use crate::config::OffloadConfig;

/// Request-decode µops in the helper's service loop (read descriptor,
/// dispatch on opcode, write the response slot).
const DISPATCH_UOPS: u64 = 3;
/// Size-class computation: index arithmetic + two dependent table loads.
const SIZE_CLASS_SW_UOPS: u64 = 5;
/// Sampler upkeep on the helper (counter decrement + branch).
const SAMPLING_UOPS: u64 = 2;
/// Sample-recording burst when the sampler fires.
const SAMPLE_BURST_UOPS: u64 = 40;
/// Free-list addressing from the class id.
const LIST_ADDR_UOPS: u64 = 4;
/// Software pop: load head, load next, store head, branch.
const POP_SW_UOPS: u64 = 4;
/// Software push: store next into block, store new head, one ALU.
const PUSH_SW_UOPS: u64 = 3;
/// Per-list length/metadata bookkeeping.
const METADATA_UOPS: u64 = 6;
/// Pagemap radix walk of an unsized delete: three dependent loads.
const PAGEMAP_UOPS: u64 = 3;

/// In-order pointer-chase load penalty on the helper, cycles. The helper's
/// small cache keeps allocator metadata warm (it touches nothing else),
/// so chases price at an L2-ish latency rather than DRAM.
const CHASE_LOAD_CYCLES: u64 = 12;
/// Central free-list lock acquire/release on the helper, cycles.
const LOCK_CYCLES: u64 = 30;
/// OS grant latency (page-heap growth), cycles — matches the main
/// simulator's syscall model.
const OS_GROW_CYCLES: u64 = 8000;

/// The allocator path a request takes on the helper, as classified by the
/// functional allocator. Shape parameters scale the slow-path costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServicePath {
    /// Thread-cache hit.
    MallocFast,
    /// Central free-list refill of `batch` objects.
    MallocCentral {
        /// Objects fetched into the thread cache.
        batch: u64,
    },
    /// Refill that carved a fresh span into `objects` objects.
    MallocSpan {
        /// Objects fetched into the thread cache.
        batch: u64,
        /// Objects carved from the span.
        objects: u64,
        /// Span length in pages.
        pages: u64,
    },
    /// Span carve that also grew the heap with an OS grant.
    MallocOs {
        /// Objects fetched into the thread cache.
        batch: u64,
        /// Objects carved from the span.
        objects: u64,
        /// Span length in pages.
        pages: u64,
    },
    /// Large (> 256 KiB) allocation through the page heap.
    MallocLarge {
        /// Pages allocated.
        pages: u64,
        /// Whether an OS grant was needed.
        grew_heap: bool,
    },
    /// Thread-cache push.
    FreeFast {
        /// Unsized delete: the request pays the pagemap radix walk.
        unsized_walk: bool,
    },
    /// Push that released `moved` objects to the central list.
    FreeRelease {
        /// Objects released.
        moved: u64,
        /// Unsized delete: the request pays the pagemap radix walk.
        unsized_walk: bool,
    },
    /// Large free through the page heap.
    FreeLarge {
        /// Pages returned.
        pages: u64,
    },
}

/// µops the helper executes for one request. `sampled` adds the
/// sample-recording burst (mallocs only); `helper_mallacc` collapses the
/// accelerated components to single ops.
pub fn service_uops(path: ServicePath, sampled: bool, helper_mallacc: bool) -> u64 {
    let size_class = if helper_mallacc {
        1
    } else {
        SIZE_CLASS_SW_UOPS
    };
    let pop = if helper_mallacc { 1 } else { POP_SW_UOPS };
    let push = if helper_mallacc { 1 } else { PUSH_SW_UOPS };
    let malloc_fast =
        DISPATCH_UOPS + size_class + SAMPLING_UOPS + LIST_ADDR_UOPS + pop + METADATA_UOPS;
    let free_fast = |unsized_walk: bool| {
        let cls = if unsized_walk {
            PAGEMAP_UOPS
        } else {
            size_class
        };
        DISPATCH_UOPS + cls + LIST_ADDR_UOPS + push + METADATA_UOPS
    };
    let uops = match path {
        ServicePath::MallocFast => malloc_fast,
        ServicePath::MallocCentral { batch } => malloc_fast + 5 + 2 * batch,
        ServicePath::MallocSpan {
            batch,
            objects,
            pages,
        } => malloc_fast + 5 + 2 * batch + 2 + pages + objects,
        ServicePath::MallocOs {
            batch,
            objects,
            pages,
        } => malloc_fast + 5 + 2 * batch + 2 + pages + objects,
        ServicePath::MallocLarge { pages, .. } => DISPATCH_UOPS + 7 + pages / 16,
        ServicePath::FreeFast { unsized_walk } => free_fast(unsized_walk),
        ServicePath::FreeRelease {
            moved,
            unsized_walk,
        } => free_fast(unsized_walk) + 4 + moved,
        ServicePath::FreeLarge { pages } => DISPATCH_UOPS + 7 + pages / 16,
    };
    uops + if sampled && is_malloc(path) {
        SAMPLE_BURST_UOPS
    } else {
        0
    }
}

fn is_malloc(path: ServicePath) -> bool {
    matches!(
        path,
        ServicePath::MallocFast
            | ServicePath::MallocCentral { .. }
            | ServicePath::MallocSpan { .. }
            | ServicePath::MallocOs { .. }
            | ServicePath::MallocLarge { .. }
    )
}

/// Fixed memory/lock/syscall cycles a path pays on top of its µop stream.
fn fixed_cycles(path: ServicePath, helper_mallacc: bool) -> u64 {
    let pop_chase = if helper_mallacc {
        0
    } else {
        // The fast-path pop's dependent head/next loads chase pointers.
        CHASE_LOAD_CYCLES
    };
    match path {
        ServicePath::MallocFast => pop_chase,
        ServicePath::MallocCentral { .. } => pop_chase + LOCK_CYCLES,
        ServicePath::MallocSpan { .. } => pop_chase + LOCK_CYCLES + 2 * CHASE_LOAD_CYCLES,
        ServicePath::MallocOs { .. } => {
            pop_chase + LOCK_CYCLES + 2 * CHASE_LOAD_CYCLES + OS_GROW_CYCLES
        }
        ServicePath::MallocLarge { grew_heap, .. } => {
            6 * CHASE_LOAD_CYCLES + if grew_heap { OS_GROW_CYCLES } else { 0 }
        }
        ServicePath::FreeFast { unsized_walk } => walk_cycles(unsized_walk),
        ServicePath::FreeRelease { unsized_walk, .. } => walk_cycles(unsized_walk) + LOCK_CYCLES,
        ServicePath::FreeLarge { .. } => 3 * CHASE_LOAD_CYCLES,
    }
}

fn walk_cycles(unsized_walk: bool) -> u64 {
    if unsized_walk {
        PAGEMAP_UOPS * CHASE_LOAD_CYCLES
    } else {
        0
    }
}

/// Helper-side service cost of one request, in cycles: the µop stream at
/// the helper's in-order IPC plus the path's fixed memory/lock/OS cycles.
///
/// # Panics
///
/// Panics if the configured helper IPC is zero.
pub fn service_cycles(path: ServicePath, sampled: bool, cfg: &OffloadConfig) -> u64 {
    assert!(cfg.helper_ipc_milli > 0, "helper IPC must be positive");
    let uops = service_uops(path, sampled, cfg.helper_mallacc);
    let exec = (uops * 1000).div_ceil(u64::from(cfg.helper_ipc_milli));
    exec + fixed_cycles(path, cfg.helper_mallacc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> OffloadConfig {
        OffloadConfig::speedmalloc_default()
    }

    #[test]
    fn fast_paths_are_tens_of_cycles() {
        let m = service_cycles(ServicePath::MallocFast, false, &cfg());
        let f = service_cycles(
            ServicePath::FreeFast {
                unsized_walk: false,
            },
            false,
            &cfg(),
        );
        assert!((20..=60).contains(&m), "fast malloc service = {m}");
        assert!((15..=50).contains(&f), "fast free service = {f}");
    }

    #[test]
    fn helper_malloc_cache_shrinks_fast_paths() {
        let both = OffloadConfig::both_default();
        for path in [
            ServicePath::MallocFast,
            ServicePath::FreeFast {
                unsized_walk: false,
            },
        ] {
            let sw = service_cycles(path, false, &cfg());
            let hw = service_cycles(path, false, &both);
            assert!(hw < sw, "{path:?}: {hw} !< {sw}");
        }
    }

    #[test]
    fn slow_paths_order_by_depth() {
        let c = cfg();
        let fast = service_cycles(ServicePath::MallocFast, false, &c);
        let central = service_cycles(ServicePath::MallocCentral { batch: 32 }, false, &c);
        let span = service_cycles(
            ServicePath::MallocSpan {
                batch: 32,
                objects: 64,
                pages: 2,
            },
            false,
            &c,
        );
        let os = service_cycles(
            ServicePath::MallocOs {
                batch: 32,
                objects: 64,
                pages: 2,
            },
            false,
            &c,
        );
        assert!(fast < central && central < span && span < os);
        assert!(os > OS_GROW_CYCLES, "OS grant dominates");
    }

    #[test]
    fn unsized_walk_and_sampling_cost_extra() {
        let c = cfg();
        let sized = service_cycles(
            ServicePath::FreeFast {
                unsized_walk: false,
            },
            false,
            &c,
        );
        let walked = service_cycles(ServicePath::FreeFast { unsized_walk: true }, false, &c);
        assert!(walked > sized);
        let plain = service_cycles(ServicePath::MallocFast, false, &c);
        let sampled = service_cycles(ServicePath::MallocFast, true, &c);
        assert!(sampled > plain + 20);
        // Sampling burst applies to mallocs only.
        let f = ServicePath::FreeFast {
            unsized_walk: false,
        };
        assert_eq!(service_cycles(f, true, &c), service_cycles(f, false, &c));
    }

    #[test]
    fn lower_ipc_costs_more() {
        let fast = OffloadConfig {
            helper_ipc_milli: 1000,
            ..cfg()
        };
        let slow = OffloadConfig {
            helper_ipc_milli: 500,
            ..cfg()
        };
        assert!(
            service_cycles(ServicePath::MallocFast, false, &slow)
                > service_cycles(ServicePath::MallocFast, false, &fast)
        );
    }
}
