//! Silicon cost of the offload design.
//!
//! This is the expensive side of the Mallacc-vs-offload Pareto question:
//! Mallacc buys its speedup with ~1500 µm² of CAM/SRAM, while an offload
//! helper is a whole (tiny) core plus queue storage — three orders of
//! magnitude more area, which only pays off if the speedup is much larger
//! or the helper is shared. Densities use the same 28 nm calibration as
//! the malloc-cache area model.

/// Area of the in-order helper core (µm² at 28 nm): a minimal single-issue
/// scalar core with a small I/D cache, Cortex-M-class. ~0.45% of a 26.5 mm²
/// Haswell core.
pub const HELPER_CORE_UM2: f64 = 120_000.0;

/// Queue-entry descriptor bits: opcode + size/pointer operand + response
/// slot (64-bit pointer) + valid/sequence bookkeeping.
pub const QUEUE_ENTRY_BITS: u64 = 128;

/// SRAM density (µm² per byte) — same calibration as the malloc-cache
/// model's CACTI-derived constant (346 µm² / 234 B).
const SRAM_UM2_PER_BYTE: f64 = 346.0 / 234.0;

/// Doorbell/arbitration logic around the queue, µm².
const QUEUE_LOGIC_UM2: f64 = 180.0;

/// Area breakdown of one main-core/helper pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OffloadArea {
    /// The helper core itself.
    pub helper_core_um2: f64,
    /// Request/response queue SRAM.
    pub queue_sram_um2: f64,
    /// Doorbell and arbitration logic.
    pub queue_logic_um2: f64,
}

impl OffloadArea {
    /// Area of a helper pair with a `queue_depth`-entry queue.
    ///
    /// # Panics
    ///
    /// Panics if `queue_depth` is zero.
    pub fn for_depth(queue_depth: usize) -> Self {
        assert!(queue_depth > 0, "queue must have at least one entry");
        let bytes = (QUEUE_ENTRY_BITS * queue_depth as u64) as f64 / 8.0;
        Self {
            helper_core_um2: HELPER_CORE_UM2,
            queue_sram_um2: bytes * SRAM_UM2_PER_BYTE,
            queue_logic_um2: QUEUE_LOGIC_UM2,
        }
    }

    /// Total area in µm².
    pub fn total_um2(&self) -> f64 {
        self.helper_core_um2 + self.queue_sram_um2 + self.queue_logic_um2
    }
}

/// Total offload area (helper core + queue) for one main core, µm².
///
/// # Panics
///
/// Panics if `queue_depth` is zero.
pub fn offload_area_um2(queue_depth: usize) -> f64 {
    OffloadArea::for_depth(queue_depth).total_um2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helper_dwarfs_the_malloc_cache() {
        // The paper's 16-entry malloc cache is ~1484 µm²; the helper core
        // is orders of magnitude bigger — that asymmetry IS the trade.
        let a = offload_area_um2(8);
        assert!(a > 50.0 * 1484.0, "offload area {a} suspiciously small");
        assert!(a < 0.01 * 26.5e6, "still under 1% of a Haswell core");
    }

    #[test]
    fn area_grows_with_queue_depth() {
        assert!(offload_area_um2(64) > offload_area_um2(2));
        let d = offload_area_um2(64) - offload_area_um2(2);
        assert!(
            d < 2000.0,
            "queue storage is a small additive term, got {d}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_depth_rejected() {
        OffloadArea::for_depth(0);
    }
}
