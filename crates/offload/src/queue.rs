//! The bounded request/response queue and in-order helper timing model.
//!
//! The model is a deterministic integer state machine: given the cycle an
//! enqueue is submitted and the helper-side service cost, it computes when
//! (and whether) the main core stalls on a full queue and when the
//! response becomes consumable. The incremental [`OffloadQueue`] is what
//! the simulator drives; [`RefOffloadQueue`] recomputes every answer from
//! a flat request log and exists purely so differential fuzzing can pit
//! the two against each other.

use std::collections::VecDeque;

use crate::config::OffloadConfig;

/// Timing outcome of one enqueue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnqueueOutcome {
    /// Main-core cycles spent blocked on a full queue before the request
    /// could be submitted (0 when a slot was free).
    pub stall_cycles: u64,
    /// Cycle the request landed in the queue (submission time + stall).
    pub submitted_at: u64,
    /// Cycle the response is consumable by the main core.
    pub response_ready: u64,
}

/// Conservation counters for the queue: every request enqueued is either
/// still occupying a slot or has retired, and stalls are fully accounted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OffloadStats {
    /// Requests enqueued.
    pub enqueued: u64,
    /// Requests whose response has drained out of the queue.
    pub retired: u64,
    /// Enqueues that found the queue full.
    pub queue_full_stalls: u64,
    /// Total main-core cycles lost to queue-full backpressure.
    pub stall_cycles: u64,
    /// Total helper-core busy cycles (sum of service costs).
    pub busy_cycles: u64,
    /// High-water mark of queue occupancy.
    pub max_occupancy: usize,
}

/// The incremental queue/helper timing model: one per main core.
#[derive(Debug, Clone)]
pub struct OffloadQueue {
    cfg: OffloadConfig,
    /// Response-ready times of requests still occupying a queue slot,
    /// oldest first (the helper is in-order, so this is non-decreasing).
    pending: VecDeque<u64>,
    /// Cycle the helper finishes its current request.
    helper_free_at: u64,
    stats: OffloadStats,
}

impl OffloadQueue {
    /// A fresh, empty queue.
    ///
    /// # Panics
    ///
    /// Panics if the configured queue depth is zero.
    pub fn new(cfg: OffloadConfig) -> Self {
        assert!(cfg.queue_depth > 0, "queue depth must be at least 1");
        Self {
            cfg,
            pending: VecDeque::new(),
            helper_free_at: 0,
            stats: OffloadStats::default(),
        }
    }

    /// The configuration the queue was built with.
    pub fn config(&self) -> OffloadConfig {
        self.cfg
    }

    /// Requests currently occupying a slot at the last drained cycle.
    pub fn occupancy(&self) -> usize {
        self.pending.len()
    }

    /// Conservation counters.
    pub fn stats(&self) -> OffloadStats {
        self.stats
    }

    /// Retires every request whose response is consumable by `now`.
    pub fn drain(&mut self, now: u64) {
        while self.pending.front().is_some_and(|&r| r <= now) {
            self.pending.pop_front();
            self.stats.retired += 1;
        }
    }

    /// Submits a request at cycle `now` with helper-side cost
    /// `service_cycles`; returns the stall and response timing.
    ///
    /// The submission time is the cycle the main core's doorbell lands —
    /// the driver charges the marshalling (`enqueue_latency`) µops itself.
    /// The request becomes visible to the helper `dequeue_latency` cycles
    /// after submission; the in-order helper starts it no earlier than its
    /// previous request finished; the response is consumable
    /// `response_latency` cycles after service completes.
    pub fn enqueue(&mut self, now: u64, service_cycles: u64) -> EnqueueOutcome {
        self.drain(now);
        let stall_cycles = if self.pending.len() >= self.cfg.queue_depth {
            // Oldest outstanding response frees the slot; its ready time
            // is strictly after `now`, else drain would have retired it.
            let freed_at = *self.pending.front().expect("depth >= 1");
            self.pending.pop_front();
            self.stats.retired += 1;
            freed_at - now
        } else {
            0
        };
        let submitted_at = now + stall_cycles;
        let visible = submitted_at + u64::from(self.cfg.dequeue_latency);
        let start = self.helper_free_at.max(visible);
        let done = start + service_cycles;
        let response_ready = done + u64::from(self.cfg.response_latency);
        self.helper_free_at = done;
        self.pending.push_back(response_ready);

        self.stats.enqueued += 1;
        self.stats.busy_cycles += service_cycles;
        if stall_cycles > 0 {
            self.stats.queue_full_stalls += 1;
            self.stats.stall_cycles += stall_cycles;
        }
        self.stats.max_occupancy = self.stats.max_occupancy.max(self.pending.len());
        EnqueueOutcome {
            stall_cycles,
            submitted_at,
            response_ready,
        }
    }
}

/// A naive reference interpreter of the queue contract.
///
/// Instead of incremental state it keeps the raw input log and, on every
/// enqueue, replays the *entire* request history through a from-scratch
/// `Vec`-based simulation, returning the final outcome. Differential
/// fuzzing runs identical request streams through both implementations
/// and demands identical outcomes on every step.
#[derive(Debug, Clone)]
pub struct RefOffloadQueue {
    cfg: OffloadConfig,
    /// `(submission cycle, service cycles)` per request, in order.
    inputs: Vec<(u64, u64)>,
}

impl RefOffloadQueue {
    /// A fresh reference queue.
    pub fn new(cfg: OffloadConfig) -> Self {
        assert!(cfg.queue_depth > 0, "queue depth must be at least 1");
        Self {
            cfg,
            inputs: Vec::new(),
        }
    }

    /// Reference enqueue: same contract as [`OffloadQueue::enqueue`].
    pub fn enqueue(&mut self, now: u64, service_cycles: u64) -> EnqueueOutcome {
        self.inputs.push((now, service_cycles));
        let depth = self.cfg.queue_depth;
        let mut slots: Vec<u64> = Vec::new();
        let mut helper_free_at = 0u64;
        let mut last = None;
        for &(t, service) in &self.inputs {
            // Ready times are non-decreasing (the helper is in-order), so
            // retaining `ready > t` equals the oldest-first front drain.
            slots.retain(|&ready| ready > t);
            let stall_cycles = if slots.len() >= depth {
                let freed_at = slots.remove(0);
                freed_at - t
            } else {
                0
            };
            let submitted_at = t + stall_cycles;
            let start = helper_free_at.max(submitted_at + u64::from(self.cfg.dequeue_latency));
            let done = start + service;
            helper_free_at = done;
            let response_ready = done + u64::from(self.cfg.response_latency);
            slots.push(response_ready);
            last = Some(EnqueueOutcome {
                stall_cycles,
                submitted_at,
                response_ready,
            });
        }
        last.expect("inputs is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> OffloadConfig {
        OffloadConfig::speedmalloc_default()
    }

    #[test]
    fn empty_queue_never_stalls() {
        let mut q = OffloadQueue::new(cfg());
        let o = q.enqueue(100, 30);
        assert_eq!(o.stall_cycles, 0);
        assert_eq!(o.submitted_at, 100);
        // dequeue 6 + service 30 + response 8.
        assert_eq!(o.response_ready, 100 + 6 + 30 + 8);
    }

    #[test]
    fn helper_serialises_back_to_back_requests() {
        let mut q = OffloadQueue::new(cfg());
        let a = q.enqueue(0, 30);
        let b = q.enqueue(1, 30);
        // b starts when a's service finished, not at its own visibility.
        assert_eq!(b.response_ready, a.response_ready + 30);
    }

    #[test]
    fn full_queue_stalls_until_the_oldest_response_drains() {
        let mut q = OffloadQueue::new(OffloadConfig::with_depth(2));
        let a = q.enqueue(0, 50);
        let _b = q.enqueue(0, 50);
        let c = q.enqueue(1, 50);
        assert_eq!(c.stall_cycles, a.response_ready - 1);
        assert_eq!(c.submitted_at, a.response_ready);
        let s = q.stats();
        assert_eq!(s.queue_full_stalls, 1);
        assert_eq!(s.stall_cycles, c.stall_cycles);
    }

    #[test]
    fn drained_requests_free_slots() {
        let mut q = OffloadQueue::new(OffloadConfig::with_depth(1));
        let a = q.enqueue(0, 10);
        let b = q.enqueue(a.response_ready + 1, 10);
        assert_eq!(b.stall_cycles, 0, "slot freed by the drained response");
    }

    #[test]
    fn conservation_enqueued_equals_retired_plus_occupancy() {
        let mut q = OffloadQueue::new(cfg());
        let mut now = 0;
        for i in 0..200u64 {
            now += (i * 7) % 40;
            q.enqueue(now, 10 + (i % 5) * 13);
        }
        let s = q.stats();
        assert_eq!(s.enqueued, 200);
        assert_eq!(s.enqueued, s.retired + q.occupancy() as u64);
        assert!(s.max_occupancy <= cfg().queue_depth);
    }

    #[test]
    fn response_ready_is_monotone() {
        let mut q = OffloadQueue::new(cfg());
        let mut last = 0;
        let mut now = 0;
        for i in 0..100u64 {
            now += (i * 3) % 25;
            let o = q.enqueue(now, 5 + (i % 7) * 11);
            assert!(
                o.response_ready >= last,
                "in-order helper, ordered responses"
            );
            last = o.response_ready;
        }
    }

    #[test]
    fn reference_queue_agrees_on_a_mixed_stream() {
        for depth in [1, 2, 4, 8] {
            let c = OffloadConfig::with_depth(depth);
            let mut q = OffloadQueue::new(c);
            let mut r = RefOffloadQueue::new(c);
            let mut now = 0u64;
            for i in 0..500u64 {
                now += (i * 13) % 37;
                let service = 5 + (i * 17) % 90;
                let a = q.enqueue(now, service);
                let b = r.enqueue(now, service);
                assert_eq!(a, b, "divergence at op {i}, depth {depth}");
            }
        }
    }
}
