//! Offload-engine configuration.

/// Default bounded request-queue depth (entries shared by outstanding
/// requests and undelivered responses).
pub const DEFAULT_QUEUE_DEPTH: usize = 8;

/// Configuration of one main-core/helper-core offload pair.
///
/// All latencies are in main-core cycles. The struct is `Copy + Eq` so it
/// can ride inside the simulator's `Mode` and inside memoisation keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OffloadConfig {
    /// Bounded queue depth; an enqueue into a full queue stalls the main
    /// core until the oldest response drains.
    pub queue_depth: usize,
    /// Helper-core IPC in thousandths (1000 = 1.0). The helper is a tiny
    /// in-order core, so it runs well below the main core's IPC.
    pub helper_ipc_milli: u32,
    /// Main-core cycles to marshal a request and ring the doorbell.
    pub enqueue_latency: u32,
    /// Helper-side cycles from doorbell to the request being decoded.
    pub dequeue_latency: u32,
    /// Cycles for the helper's response to travel back to the main core.
    pub response_latency: u32,
    /// How many cycles past an enqueue the main core can speculate before
    /// it truly needs the returned pointer (out-of-order window slack).
    /// A malloc only stalls for the part of the response latency this
    /// window does not hide; frees are fire-and-forget.
    pub speculative_window: u32,
    /// The helper core carries its own malloc cache (the `both` mode):
    /// Mallacc's structure accelerates the *helper's* fast path, shrinking
    /// service time at extra area cost.
    pub helper_mallacc: bool,
}

impl OffloadConfig {
    /// The SpeedMalloc-style reference design: plain in-order helper at
    /// 0.8 IPC behind an 8-entry queue.
    pub fn speedmalloc_default() -> Self {
        Self {
            queue_depth: DEFAULT_QUEUE_DEPTH,
            helper_ipc_milli: 800,
            enqueue_latency: 4,
            dequeue_latency: 6,
            response_latency: 8,
            speculative_window: 64,
            helper_mallacc: false,
        }
    }

    /// The combined design: the same helper core, but equipped with a
    /// malloc cache of its own.
    pub fn both_default() -> Self {
        Self {
            helper_mallacc: true,
            ..Self::speedmalloc_default()
        }
    }

    /// The default design with a different queue depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn with_depth(depth: usize) -> Self {
        assert!(depth > 0, "queue depth must be at least 1");
        Self {
            queue_depth: depth,
            ..Self::speedmalloc_default()
        }
    }

    /// Canonical, injective textual form — one axis per `key=value` pair,
    /// suitable as a memoisation-key component.
    pub fn canonical_string(&self) -> String {
        format!(
            "qdepth={};hipc={};enq={};deq={};resp={};spec={};hmc={}",
            self.queue_depth,
            self.helper_ipc_milli,
            self.enqueue_latency,
            self.dequeue_latency,
            self.response_latency,
            self.speculative_window,
            u8::from(self.helper_mallacc)
        )
    }
}

impl Default for OffloadConfig {
    fn default() -> Self {
        Self::speedmalloc_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = OffloadConfig::speedmalloc_default();
        assert_eq!(c.queue_depth, DEFAULT_QUEUE_DEPTH);
        assert!(
            c.helper_ipc_milli < 1000,
            "helper must be slower than 1.0 IPC"
        );
        assert!(!c.helper_mallacc);
        assert!(OffloadConfig::both_default().helper_mallacc);
    }

    #[test]
    fn with_depth_overrides_only_depth() {
        let c = OffloadConfig::with_depth(2);
        assert_eq!(c.queue_depth, 2);
        assert_eq!(c.helper_ipc_milli, 800);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_depth_rejected() {
        OffloadConfig::with_depth(0);
    }

    #[test]
    fn canonical_string_separates_the_variants() {
        let a = OffloadConfig::speedmalloc_default().canonical_string();
        let b = OffloadConfig::both_default().canonical_string();
        let c = OffloadConfig::with_depth(16).canonical_string();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert!(a.contains("qdepth=8"), "{a}");
    }
}
