//! A single set-associative cache with true-LRU replacement.

use crate::Addr;

/// Why a cache/TLB geometry is unusable.
///
/// Returned by [`CacheConfig::validate`] and the `try_new` constructors so
/// callers building geometries from external input (the explore grid, the
/// `repro` CLI) can reject them with a message instead of unwinding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeometryError {
    /// Capacity, line size or associativity is zero.
    ZeroDimension,
    /// The line size is not a power of two.
    LineNotPowerOfTwo,
    /// The capacity is not a whole number of lines.
    PartialLine,
    /// The capacity is not a whole number of ways.
    PartialWay,
    /// The implied set count is not a power of two.
    SetsNotPowerOfTwo,
}

impl std::fmt::Display for GeometryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ZeroDimension => {
                write!(f, "capacity, line size and associativity must be non-zero")
            }
            Self::LineNotPowerOfTwo => write!(f, "line size must be a power of two"),
            Self::PartialLine => write!(f, "capacity must be a whole number of lines"),
            Self::PartialWay => write!(f, "capacity must be a whole number of ways"),
            Self::SetsNotPowerOfTwo => write!(f, "set count must be a power of two"),
        }
    }
}

impl std::error::Error for GeometryError {}

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Cache line size in bytes (64 on Haswell).
    pub line_bytes: u64,
    /// Ways per set.
    pub associativity: u32,
    /// Load-to-use latency of a hit in this level, in cycles.
    pub hit_latency: u32,
}

impl CacheConfig {
    /// Checks the geometry and returns the implied number of sets, or a
    /// [`GeometryError`] describing the first inconsistency found.
    pub fn validate(&self) -> Result<u64, GeometryError> {
        if self.size_bytes == 0 || self.line_bytes == 0 || self.associativity == 0 {
            return Err(GeometryError::ZeroDimension);
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(GeometryError::LineNotPowerOfTwo);
        }
        let lines = self.size_bytes / self.line_bytes;
        if lines * self.line_bytes != self.size_bytes {
            return Err(GeometryError::PartialLine);
        }
        let sets = lines / self.associativity as u64;
        if sets * self.associativity as u64 != lines {
            return Err(GeometryError::PartialWay);
        }
        if !sets.is_power_of_two() {
            return Err(GeometryError::SetsNotPowerOfTwo);
        }
        Ok(sets)
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (zero sizes, non-power-of-two
    /// line/sets, or capacity not divisible by `line × ways`); use
    /// [`CacheConfig::validate`] for a fallible check.
    pub fn num_sets(&self) -> u64 {
        self.validate().unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Hit/miss/eviction counters for one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Accesses that found their line resident.
    pub hits: u64,
    /// Accesses that did not.
    pub misses: u64,
    /// Valid lines displaced by fills.
    pub evictions: u64,
    /// Lines invalidated by the antagonist hook or a flush.
    pub invalidations: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; 0 when no accesses have happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Packed per-line state: the tag in the low 62 bits (tags are block
/// addresses shifted right by the set bits, so they never reach bit 62),
/// validity and dirtiness in the top two. A whole-word compare against
/// `tag | VALID` (masking `DIRTY` off) decides a hit in one instruction.
const VALID: u64 = 1 << 63;
const DIRTY: u64 = 1 << 62;
const FLAGS: u64 = VALID | DIRTY;

/// One set-associative, true-LRU cache level.
///
/// # Example
///
/// ```
/// use mallacc_cache::{CacheConfig, SetAssocCache};
///
/// let mut c = SetAssocCache::new(CacheConfig {
///     size_bytes: 1024,
///     line_bytes: 64,
///     associativity: 2,
///     hit_latency: 4,
/// });
/// assert!(!c.probe(0));
/// c.fill(0, false);
/// assert!(c.probe(0));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    /// All ways of all sets in one flat allocation, `associativity`
    /// entries per set, split structure-of-arrays style: `tags` holds the
    /// packed tag+flag words the lookup scan reads, `last_use` the LRU
    /// timestamps only hits and fills touch. `Hierarchy::access` runs on
    /// every simulated memory µop (and every fast-forwarded one), and the
    /// allocator workloads miss far more than they hit, so the scan is the
    /// hot loop of the whole simulator: keeping it to one or two host
    /// cache lines per set (8 bytes per way instead of a padded
    /// four-field struct) is the difference between the hierarchy walk
    /// being a few nanoseconds and dominating the engine.
    tags: Vec<u64>,
    /// Monotonic timestamp of last touch per way; smaller = older.
    last_use: Vec<u64>,
    set_mask: u64,
    set_bits: u32,
    line_shift: u32,
    clock: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Builds an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent; see [`CacheConfig::num_sets`].
    pub fn new(config: CacheConfig) -> Self {
        Self::try_new(config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds an empty cache, rejecting inconsistent geometries (zero
    /// dimensions, non-power-of-two line/sets, partial lines or ways) with
    /// a [`GeometryError`] instead of panicking.
    pub fn try_new(config: CacheConfig) -> Result<Self, GeometryError> {
        let sets = config.validate()?;
        Ok(Self {
            config,
            tags: vec![0; (sets * config.associativity as u64) as usize],
            last_use: vec![0; (sets * config.associativity as u64) as usize],
            set_mask: sets - 1,
            set_bits: (sets - 1).count_ones(),
            line_shift: config.line_bytes.trailing_zeros(),
            clock: 0,
            stats: CacheStats::default(),
        })
    }

    /// The ways of `addr`'s set, as a flat-slice range.
    #[inline]
    fn set_range(&self, set_idx: usize) -> std::ops::Range<usize> {
        let assoc = self.config.associativity as usize;
        set_idx * assoc..(set_idx + 1) * assoc
    }

    /// The geometry this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the statistics (but not the contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Adds `other`'s counters onto this cache's statistics. Used when a
    /// shared-L3 snapshot replaces a per-core replica: the replica's
    /// accumulated hit/miss history is folded into the fresh copy.
    pub fn add_stats(&mut self, other: CacheStats) {
        self.stats.hits += other.hits;
        self.stats.misses += other.misses;
        self.stats.evictions += other.evictions;
        self.stats.invalidations += other.invalidations;
    }

    #[inline]
    fn index_and_tag(&self, addr: Addr) -> (usize, u64) {
        let block = addr >> self.line_shift;
        ((block & self.set_mask) as usize, block >> self.set_bits)
    }

    /// Looks up `addr`; on a hit, refreshes LRU state and returns `true`.
    /// Counts a hit or a miss.
    #[inline]
    pub fn access(&mut self, addr: Addr, write: bool) -> bool {
        self.clock += 1;
        let (set_idx, tag) = self.index_and_tag(addr);
        let want = tag | VALID;
        let range = self.set_range(set_idx);
        for i in range {
            if self.tags[i] & !DIRTY == want {
                self.last_use[i] = self.clock;
                if write {
                    self.tags[i] |= DIRTY;
                }
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        false
    }

    /// Checks residency without perturbing LRU state or statistics.
    pub fn probe(&self, addr: Addr) -> bool {
        let (set_idx, tag) = self.index_and_tag(addr);
        let want = tag | VALID;
        self.tags[self.set_range(set_idx)]
            .iter()
            .any(|&t| t & !DIRTY == want)
    }

    /// Installs the line containing `addr`, evicting the LRU way if the set
    /// is full. Returns the evicted line's base address, if any.
    pub fn fill(&mut self, addr: Addr, write: bool) -> Option<Addr> {
        self.clock += 1;
        let (set_idx, tag) = self.index_and_tag(addr);
        let range = self.set_range(set_idx);
        let set_tags = &self.tags[range.clone()];
        // Prefer an invalid way; otherwise evict LRU.
        let victim = range.start
            + set_tags
                .iter()
                .position(|&t| t & VALID == 0)
                .unwrap_or_else(|| {
                    let lru = &self.last_use[range.clone()];
                    (0..lru.len())
                        .min_by_key(|&i| lru[i])
                        .expect("associativity > 0")
                });
        let old = self.tags[victim];
        self.tags[victim] = tag | VALID | if write { DIRTY } else { 0 };
        self.last_use[victim] = self.clock;
        if old & VALID != 0 {
            self.stats.evictions += 1;
            let old_block = ((old & !FLAGS) << self.set_bits) | set_idx as u64;
            Some(old_block << self.line_shift)
        } else {
            None
        }
    }

    /// Invalidates `addr`'s line if resident. Returns whether it was.
    pub fn invalidate(&mut self, addr: Addr) -> bool {
        let (set_idx, tag) = self.index_and_tag(addr);
        let want = tag | VALID;
        for i in self.set_range(set_idx) {
            if self.tags[i] & !DIRTY == want {
                self.tags[i] = 0;
                self.stats.invalidations += 1;
                return true;
            }
        }
        false
    }

    /// Invalidates the least-recently-used `fraction` of ways in every set.
    ///
    /// This reproduces the paper's `antagonist` simulator callback, which
    /// "evicts the less used half of each set" to mimic an application
    /// striding through a large working set.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn evict_lru_fraction(&mut self, fraction: f64) {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction {fraction} outside [0, 1]"
        );
        let ways = self.config.associativity as usize;
        // "The less used half of each set": in the paper's simulator the
        // sets are full of application data, so evicting the LRU half kills
        // every line that was not touched very recently. We model that by
        // evicting the least-recently-used `fraction` of the *valid* lines
        // in each set (rounded down — a set holding a single hot line keeps
        // it, just as a just-touched line ranks in the kept half).
        for set_start in (0..self.tags.len()).step_by(ways) {
            let mut order: Vec<usize> = (set_start..set_start + ways)
                .filter(|&i| self.tags[i] & VALID != 0)
                .collect();
            let n_evict = ((order.len() as f64) * fraction).floor() as usize;
            if n_evict == 0 {
                continue;
            }
            order.sort_by_key(|&i| self.last_use[i]);
            for &i in order.iter().take(n_evict) {
                self.tags[i] = 0;
                self.stats.invalidations += 1;
            }
        }
    }

    /// Invalidates everything (e.g. a context switch in the model).
    pub fn flush(&mut self) {
        for t in &mut self.tags {
            if *t & VALID != 0 {
                *t = 0;
                self.stats.invalidations += 1;
            }
        }
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> u64 {
        self.tags.iter().filter(|&&t| t & VALID != 0).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 sets x 2 ways x 64B lines = 512B.
        SetAssocCache::new(CacheConfig {
            size_bytes: 512,
            line_bytes: 64,
            associativity: 2,
            hit_latency: 4,
        })
    }

    #[test]
    fn geometry() {
        assert_eq!(tiny().config().num_sets(), 4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_line() {
        SetAssocCache::new(CacheConfig {
            size_bytes: 512,
            line_bytes: 48,
            associativity: 2,
            hit_latency: 1,
        });
    }

    #[test]
    fn miss_then_hit_same_line() {
        let mut c = tiny();
        assert!(!c.access(100, false));
        c.fill(100, false);
        // Same 64-byte line.
        assert!(c.access(127, false));
        assert!(c.access(64, false));
        // Next line misses.
        assert!(!c.access(128, false));
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Three conflicting lines in set 0 (stride = sets * line = 256).
        c.fill(0, false);
        c.fill(256, false);
        // Touch line 0 so 256 becomes LRU.
        assert!(c.access(0, false));
        let evicted = c.fill(512, false);
        assert_eq!(evicted, Some(256));
        assert!(c.probe(0));
        assert!(!c.probe(256));
        assert!(c.probe(512));
    }

    #[test]
    fn fill_prefers_invalid_ways() {
        let mut c = tiny();
        c.fill(0, false);
        assert_eq!(c.fill(256, false), None); // second way free
        assert_eq!(c.resident_lines(), 2);
    }

    #[test]
    fn invalidate_specific_line() {
        let mut c = tiny();
        c.fill(0, false);
        assert!(c.invalidate(0));
        assert!(!c.invalidate(0));
        assert!(!c.probe(0));
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn antagonist_evicts_lru_half() {
        let mut c = tiny();
        c.fill(0, false);
        c.fill(256, false);
        c.access(256, false); // 0 is now LRU in set 0
        c.evict_lru_fraction(0.5);
        assert!(!c.probe(0), "LRU way should be evicted");
        assert!(c.probe(256), "MRU way should survive");
    }

    #[test]
    fn antagonist_zero_fraction_is_noop() {
        let mut c = tiny();
        c.fill(0, false);
        c.evict_lru_fraction(0.0);
        assert!(c.probe(0));
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = tiny();
        for i in 0..8u64 {
            c.fill(i * 64, false);
        }
        assert_eq!(c.resident_lines(), 8);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut c = tiny();
        c.fill(0, false);
        c.fill(256, false);
        // Probing 0 must NOT make it MRU.
        assert!(c.probe(0));
        let evicted = c.fill(512, false);
        assert_eq!(evicted, Some(0));
    }

    #[test]
    fn zero_dimension_geometries_are_rejected_not_panicked() {
        for cfg in [
            CacheConfig {
                size_bytes: 0,
                line_bytes: 64,
                associativity: 2,
                hit_latency: 1,
            },
            CacheConfig {
                size_bytes: 512,
                line_bytes: 0,
                associativity: 2,
                hit_latency: 1,
            },
            CacheConfig {
                size_bytes: 512,
                line_bytes: 64,
                associativity: 0,
                hit_latency: 1,
            },
        ] {
            assert_eq!(cfg.validate(), Err(GeometryError::ZeroDimension));
            assert!(SetAssocCache::try_new(cfg).is_err());
        }
    }

    #[test]
    fn inconsistent_geometries_report_the_right_error() {
        let base = CacheConfig {
            size_bytes: 512,
            line_bytes: 64,
            associativity: 2,
            hit_latency: 1,
        };
        assert_eq!(
            CacheConfig {
                line_bytes: 48,
                ..base
            }
            .validate(),
            Err(GeometryError::LineNotPowerOfTwo)
        );
        assert_eq!(
            CacheConfig {
                size_bytes: 96,
                line_bytes: 64,
                associativity: 1,
                hit_latency: 1,
            }
            .validate(),
            Err(GeometryError::PartialLine)
        );
        assert_eq!(
            CacheConfig {
                size_bytes: 192,
                associativity: 2,
                ..base
            }
            .validate(),
            Err(GeometryError::PartialWay)
        );
        assert_eq!(
            CacheConfig {
                size_bytes: 384,
                associativity: 2,
                ..base
            }
            .validate(),
            Err(GeometryError::SetsNotPowerOfTwo)
        );
        assert_eq!(base.validate(), Ok(4));
    }

    #[test]
    fn eviction_starts_exactly_at_the_associativity_boundary() {
        // 2-way set: the first `associativity` conflicting fills must not
        // evict anything; fill number associativity+1 must evict exactly
        // one line, and it must be the LRU one.
        let mut c = tiny();
        assert_eq!(c.fill(0, false), None);
        assert_eq!(c.fill(256, false), None, "boundary fill must not evict");
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.resident_lines(), 2);
        let evicted = c.fill(512, false);
        assert_eq!(evicted, Some(0), "one past the boundary evicts the LRU");
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.resident_lines(), 2, "occupancy is capped at the ways");
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = tiny();
        for i in 0..4u64 {
            c.fill(i * 64, false);
        }
        for i in 0..4u64 {
            assert!(c.probe(i * 64), "set {i} lost its line");
        }
    }
}
