//! A shared last-level cache coordinator for multi-core simulation.
//!
//! The multi-core layer gives every simulated core a private [`Hierarchy`]
//! (L1 + L2 + an L3 *replica*) so cores can be timed on separate host
//! threads without locking. Sharing of the L3 is modelled with an epoch
//! protocol built from the primitives here:
//!
//! 1. At the start of an epoch, each core's hierarchy receives a
//!    [`SharedL3::snapshot`] of the master L3 via
//!    [`Hierarchy::install_l3`](crate::Hierarchy::install_l3).
//! 2. During the epoch each core runs privately, recording every access
//!    that misses its L1 and L2 (and therefore reaches the L3 level) via
//!    [`Hierarchy::set_l3_logging`](crate::Hierarchy::set_l3_logging).
//! 3. At the epoch barrier, the per-core logs are drained with
//!    [`Hierarchy::take_l3_log`](crate::Hierarchy::take_l3_log) and merged
//!    into the master with [`SharedL3::commit`] in **fixed core order**,
//!    making the merged contents independent of host scheduling.
//!
//! Cross-core interference (a core's fills evicting another core's lines)
//! therefore becomes visible with one epoch of delay — the standard
//! trade-off of deterministic parallel cache simulation.

use crate::cache::{CacheConfig, CacheStats, SetAssocCache};
use crate::Addr;

/// One access that reached the L3 level (i.e. missed L1 and L2) inside a
/// private hierarchy, recorded for later replay into the shared master.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L3Access {
    /// The accessed byte address.
    pub addr: Addr,
    /// Whether the access was a store (write-allocate on fill).
    pub write: bool,
}

/// The master copy of a shared L3 plus merge bookkeeping.
#[derive(Debug, Clone)]
pub struct SharedL3 {
    master: SetAssocCache,
    committed_accesses: u64,
    commits: u64,
}

impl SharedL3 {
    /// Builds an empty shared L3 with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent; see
    /// [`CacheConfig::num_sets`].
    pub fn new(config: CacheConfig) -> Self {
        Self {
            master: SetAssocCache::new(config),
            committed_accesses: 0,
            commits: 0,
        }
    }

    /// The geometry of the master cache.
    pub fn config(&self) -> &CacheConfig {
        self.master.config()
    }

    /// A copy of the master contents for one core's private replica, with
    /// statistics zeroed so the replica accumulates only its own epoch's
    /// hits and misses.
    pub fn snapshot(&self) -> SetAssocCache {
        let mut copy = self.master.clone();
        copy.reset_stats();
        copy
    }

    /// Replays one core's epoch log into the master: hits refresh LRU
    /// state, misses fill (displacing LRU lines). Call once per core per
    /// epoch, always in the same core order, so the merged contents are
    /// deterministic.
    pub fn commit(&mut self, log: &[L3Access]) {
        for a in log {
            if !self.master.access(a.addr, a.write) {
                self.master.fill(a.addr, a.write);
            }
        }
        self.committed_accesses += log.len() as u64;
        self.commits += 1;
    }

    /// Direct read access to the master cache (tests, warmup).
    pub fn master(&self) -> &SetAssocCache {
        &self.master
    }

    /// Mutable access to the master cache, e.g. to pre-warm shared
    /// allocator metadata before the first epoch.
    pub fn master_mut(&mut self) -> &mut SetAssocCache {
        &mut self.master
    }

    /// Master-side statistics accumulated by [`SharedL3::commit`] replays.
    pub fn stats(&self) -> CacheStats {
        self.master.stats()
    }

    /// Total L3-level accesses merged so far.
    pub fn committed_accesses(&self) -> u64 {
        self.committed_accesses
    }

    /// Number of [`SharedL3::commit`] calls so far (cores × epochs).
    pub fn commits(&self) -> u64 {
        self.commits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::{AccessKind, Hierarchy, HierarchyConfig};

    fn tiny_l3() -> CacheConfig {
        CacheConfig {
            size_bytes: 4096,
            line_bytes: 64,
            associativity: 4,
            hit_latency: 34,
        }
    }

    #[test]
    fn snapshot_reflects_master_contents_with_clean_stats() {
        let mut shared = SharedL3::new(tiny_l3());
        shared.master_mut().fill(0x1000, false);
        let snap = shared.snapshot();
        assert!(snap.probe(0x1000));
        assert_eq!(snap.stats().hits + snap.stats().misses, 0);
    }

    #[test]
    fn commit_makes_lines_visible_to_next_snapshot() {
        let mut shared = SharedL3::new(tiny_l3());
        shared.commit(&[L3Access {
            addr: 0x2000,
            write: false,
        }]);
        assert!(shared.snapshot().probe(0x2000));
        assert_eq!(shared.committed_accesses(), 1);
        assert_eq!(shared.commits(), 1);
    }

    #[test]
    fn fixed_commit_order_is_deterministic() {
        let log_a: Vec<L3Access> = (0..64)
            .map(|i| L3Access {
                addr: 0x10_0000 + i * 64,
                write: i % 3 == 0,
            })
            .collect();
        let log_b: Vec<L3Access> = (0..64)
            .map(|i| L3Access {
                addr: 0x20_0000 + i * 64,
                write: i % 5 == 0,
            })
            .collect();
        let run = || {
            let mut s = SharedL3::new(tiny_l3());
            s.commit(&log_a);
            s.commit(&log_b);
            let snap = s.snapshot();
            (0..0x40u64)
                .map(|i| {
                    snap.probe(0x10_0000 + i * 64) as u8 + snap.probe(0x20_0000 + i * 64) as u8
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn hierarchy_logs_only_l1_l2_misses() {
        let mut h = Hierarchy::new(HierarchyConfig::haswell());
        h.set_l3_logging(true);
        // Cold access reaches memory through L3: logged.
        h.access(0x3000, AccessKind::Read);
        // Warm re-access hits L1: not logged.
        h.access(0x3000, AccessKind::Read);
        let log = h.take_l3_log();
        assert_eq!(
            log,
            vec![L3Access {
                addr: 0x3000,
                write: false,
            }]
        );
        // Draining empties the log.
        assert!(h.take_l3_log().is_empty());
    }

    #[test]
    fn install_l3_refreshes_replica_from_master() {
        let mut shared = SharedL3::new(HierarchyConfig::haswell().l3);
        shared.commit(&[L3Access {
            addr: 0x9000,
            write: false,
        }]);
        let mut h = Hierarchy::new(HierarchyConfig::haswell());
        assert_eq!(h.peek_latency(0x9000), 200, "cold: would go to DRAM");
        h.install_l3(shared.snapshot());
        // Now the line another "core" brought in hits in (replica) L3.
        let r = h.access(0x9000, AccessKind::Read);
        assert_eq!(r.latency, 34 + 30, "L3 hit plus cold page walk");
    }

    #[test]
    fn epoch_round_trip_two_cores() {
        // Core 0 misses a line in epoch 1; after the barrier commit, core 1
        // sees it as an L3 hit in epoch 2.
        let mut shared = SharedL3::new(HierarchyConfig::haswell().l3);
        let mut core0 = Hierarchy::new(HierarchyConfig::haswell());
        let mut core1 = Hierarchy::new(HierarchyConfig::haswell());
        for c in [&mut core0, &mut core1] {
            c.set_l3_logging(true);
            c.install_l3(shared.snapshot());
        }
        core0.access(0xA000, AccessKind::Read);
        // Barrier: commit in fixed core order.
        shared.commit(&core0.take_l3_log());
        shared.commit(&core1.take_l3_log());
        core0.install_l3(shared.snapshot());
        core1.install_l3(shared.snapshot());
        // TLB is private and cold in core 1; the data itself is an L3 hit.
        let r = core1.access(0xA000, AccessKind::Read);
        assert_eq!(r.latency, 34 + 30);
    }
}
