//! A two-level data TLB.
//!
//! §3.3 of the paper singles the TLB out: the address-to-size-class page
//! map that `free()` walks "tends to cache poorly, especially in the TLB,
//! leading to expensive losses". The model is Haswell-like: a small L1
//! DTLB backed by a large unified STLB, with a fixed page-walk cost past
//! both. Translations piggyback on every access
//! ([`crate::Hierarchy::access`] adds the returned penalty to the access
//! latency).

use crate::cache::{CacheConfig, GeometryError, SetAssocCache};
use crate::Addr;

/// TLB geometry and latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// L1 DTLB entries.
    pub l1_entries: u32,
    /// L1 DTLB associativity.
    pub l1_associativity: u32,
    /// STLB entries.
    pub l2_entries: u32,
    /// STLB associativity.
    pub l2_associativity: u32,
    /// Extra cycles for an access that hits the STLB but missed L1.
    pub l2_latency: u32,
    /// Extra cycles for a full page walk.
    pub walk_latency: u32,
    /// Page size in bytes (4 KiB hardware pages).
    pub page_bytes: u64,
}

impl TlbConfig {
    /// Haswell-like: 64-entry 4-way L1 DTLB, 1024-entry 8-way STLB at
    /// 8 extra cycles, ~30-cycle page walk, 4 KiB pages.
    pub fn haswell() -> Self {
        Self {
            l1_entries: 64,
            l1_associativity: 4,
            l2_entries: 1024,
            l2_associativity: 8,
            l2_latency: 8,
            walk_latency: 30,
            page_bytes: 4096,
        }
    }
}

impl Default for TlbConfig {
    fn default() -> Self {
        Self::haswell()
    }
}

/// TLB statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TlbStats {
    /// Translations that hit the L1 DTLB.
    pub l1_hits: u64,
    /// Translations that fell to the STLB and hit.
    pub l2_hits: u64,
    /// Full page walks.
    pub walks: u64,
}

/// The two-level TLB.
///
/// # Example
///
/// ```
/// use mallacc_cache::{Tlb, TlbConfig};
///
/// let mut tlb = Tlb::new(TlbConfig::haswell());
/// let cold = tlb.translate(0x123_4000);
/// let warm = tlb.translate(0x123_4008); // same page
/// assert_eq!(cold, 30);
/// assert_eq!(warm, 0);
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    l1: SetAssocCache,
    l2: SetAssocCache,
    stats: TlbStats,
}

impl Tlb {
    /// Builds an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (non-power-of-two set
    /// counts).
    pub fn new(config: TlbConfig) -> Self {
        Self::try_new(config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds an empty TLB, rejecting zero-entry/zero-way (or otherwise
    /// inconsistent) geometries with a [`GeometryError`] instead of
    /// panicking.
    pub fn try_new(config: TlbConfig) -> Result<Self, GeometryError> {
        let level = |entries: u32, assoc: u32, lat: u32| {
            SetAssocCache::try_new(CacheConfig {
                size_bytes: u64::from(entries) * config.page_bytes,
                line_bytes: config.page_bytes,
                associativity: assoc,
                hit_latency: lat,
            })
        };
        Ok(Self {
            config,
            l1: level(config.l1_entries, config.l1_associativity, 0)?,
            l2: level(
                config.l2_entries,
                config.l2_associativity,
                config.l2_latency,
            )?,
            stats: TlbStats::default(),
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Translates `addr`, returning the extra access latency (0 on an L1
    /// hit) and updating residency.
    pub fn translate(&mut self, addr: Addr) -> u32 {
        if self.l1.access(addr, false) {
            self.stats.l1_hits += 1;
            return 0;
        }
        if self.l2.access(addr, false) {
            self.stats.l2_hits += 1;
            self.l1.fill(addr, false);
            return self.config.l2_latency;
        }
        self.stats.walks += 1;
        self.l2.fill(addr, false);
        self.l1.fill(addr, false);
        self.config.walk_latency
    }

    /// Flushes both levels (full address-space switch).
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_then_l1_hit() {
        let mut t = Tlb::new(TlbConfig::haswell());
        assert_eq!(t.translate(0x8000), 30);
        assert_eq!(t.translate(0x8FFF), 0, "same 4 KiB page");
        assert_eq!(t.translate(0x9000), 30, "next page walks");
        assert_eq!(t.stats().walks, 2);
        assert_eq!(t.stats().l1_hits, 1);
    }

    #[test]
    fn stlb_catches_l1_capacity_misses() {
        let mut t = Tlb::new(TlbConfig::haswell());
        // Touch 256 pages: far beyond L1 (64) but within STLB (1024).
        for p in 0..256u64 {
            t.translate(p * 4096);
        }
        let before = t.stats();
        assert_eq!(before.walks, 256);
        // Second pass: L1 thrashes, STLB covers.
        for p in 0..256u64 {
            let lat = t.translate(p * 4096);
            assert!(lat == 0 || lat == 8, "unexpected latency {lat}");
        }
        assert_eq!(t.stats().walks, 256, "no new walks on the second pass");
        assert!(t.stats().l2_hits > before.l2_hits);
    }

    #[test]
    fn sparse_pages_always_walk() {
        let mut t = Tlb::new(TlbConfig::haswell());
        // 4096 distinct pages exceed even the STLB.
        for p in 0..4096u64 {
            t.translate(p * 4096);
        }
        let w = t.stats().walks;
        for p in 0..64u64 {
            t.translate(p * 4096 * 64); // strided revisit, mostly evicted
        }
        assert!(t.stats().walks > w, "striding past the reach must walk");
    }

    #[test]
    fn zero_entry_and_zero_way_tlbs_are_rejected_not_panicked() {
        let zero_entries = TlbConfig {
            l1_entries: 0,
            ..TlbConfig::haswell()
        };
        assert_eq!(
            Tlb::try_new(zero_entries).err(),
            Some(GeometryError::ZeroDimension)
        );
        let zero_ways = TlbConfig {
            l2_associativity: 0,
            ..TlbConfig::haswell()
        };
        assert_eq!(
            Tlb::try_new(zero_ways).err(),
            Some(GeometryError::ZeroDimension)
        );
        assert!(Tlb::try_new(TlbConfig::haswell()).is_ok());
    }

    #[test]
    fn page_straddling_accesses_translate_each_side_separately() {
        // The last byte of one page and the first byte of the next are one
        // byte apart but live on different pages: each side of the boundary
        // must walk independently, and warming one side must not warm the
        // other. (Cache lines are 64 B-aligned so a single *line* never
        // straddles a 4 KiB page; what straddles are access patterns, and
        // the TLB must key strictly on the page number.)
        let mut t = Tlb::new(TlbConfig::haswell());
        assert_eq!(t.translate(0x1FFF), 30, "low side of the boundary walks");
        assert_eq!(t.translate(0x2000), 30, "high side still walks");
        assert_eq!(t.translate(0x1FC0), 0, "low page is now warm");
        assert_eq!(t.translate(0x2FFF), 0, "high page warm across its span");
        assert_eq!(t.stats().walks, 2);
        assert_eq!(t.stats().l1_hits, 2);
    }

    #[test]
    fn flush_forgets_everything() {
        let mut t = Tlb::new(TlbConfig::haswell());
        t.translate(0x8000);
        t.flush();
        assert_eq!(t.translate(0x8000), 30);
    }
}
