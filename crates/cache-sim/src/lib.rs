//! Set-associative cache hierarchy timing model for the Mallacc reproduction.
//!
//! The Mallacc paper evaluates its accelerator on XIOSim configured like an
//! Intel Haswell. What its results actually depend on from the memory system
//! is (a) load-to-use latencies per level (4 / 12 / 34 cycles, ~200 to DRAM)
//! and (b) *which* allocator data structures get evicted by the surrounding
//! application — the `antagonist` microbenchmark explicitly "evicts the less
//! used half of each set of the L1 and L2 data caches" between calls.
//!
//! This crate models exactly that: a three-level, set-associative, LRU,
//! write-allocate hierarchy over a simulated 64-bit address space, with an
//! [`Hierarchy::evict_antagonist`] hook reproducing the paper's cache
//! trashing callback.
//!
//! # Example
//!
//! ```
//! use mallacc_cache::{Hierarchy, HierarchyConfig, AccessKind};
//!
//! let mut mem = Hierarchy::new(HierarchyConfig::haswell());
//! // Cold access goes to DRAM...
//! let miss = mem.access(0x8000, AccessKind::Read);
//! // ...and a re-access hits in L1.
//! let hit = mem.access(0x8000, AccessKind::Read);
//! assert!(miss.latency > hit.latency);
//! assert_eq!(hit.latency, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod hierarchy;
mod shared;
mod tlb;

pub use cache::{CacheConfig, CacheStats, GeometryError, SetAssocCache};
pub use hierarchy::{AccessKind, AccessResult, Hierarchy, HierarchyConfig, Level};
pub use shared::{L3Access, SharedL3};
pub use tlb::{Tlb, TlbConfig, TlbStats};

/// A simulated 64-bit byte address.
///
/// The allocator model hands out addresses from a synthetic address space;
/// they are never dereferenced, only fed to the cache model.
pub type Addr = u64;
