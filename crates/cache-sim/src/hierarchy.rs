//! The three-level cache hierarchy plus DRAM.

use crate::cache::{CacheConfig, CacheStats, SetAssocCache};
use crate::shared::L3Access;
use crate::tlb::{Tlb, TlbConfig, TlbStats};
use crate::Addr;

/// How an access touches memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A demand load. Its latency is on the critical path.
    Read,
    /// A store. Write-allocate; latency is absorbed by the store queue.
    Write,
    /// A software/accelerator prefetch. Fills like a read.
    Prefetch,
}

/// Which level serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// First-level data cache.
    L1,
    /// Unified second-level cache.
    L2,
    /// Last-level cache.
    L3,
    /// Main memory.
    Memory,
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Level::L1 => "L1",
            Level::L2 => "L2",
            Level::L3 => "L3",
            Level::Memory => "memory",
        };
        f.write_str(s)
    }
}

/// Outcome of one hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Load-to-use latency in cycles.
    pub latency: u32,
    /// The level that had the data.
    pub level: Level,
}

/// Geometry and latencies for the whole hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 data cache.
    pub l1: CacheConfig,
    /// L2 cache.
    pub l2: CacheConfig,
    /// L3 cache.
    pub l3: CacheConfig,
    /// Latency of a demand miss all the way to DRAM, in cycles.
    pub memory_latency: u32,
    /// Data TLB configuration.
    pub tlb: TlbConfig,
}

impl HierarchyConfig {
    /// An Intel Haswell-like configuration: 32 KiB/8-way L1 at 4 cycles,
    /// 256 KiB/8-way L2 at 12 cycles, 8 MiB/16-way L3 at 34 cycles (the
    /// paper quotes 34 cycles for Haswell's L3), 200-cycle DRAM.
    pub fn haswell() -> Self {
        Self {
            l1: CacheConfig {
                size_bytes: 32 * 1024,
                line_bytes: 64,
                associativity: 8,
                hit_latency: 4,
            },
            l2: CacheConfig {
                size_bytes: 256 * 1024,
                line_bytes: 64,
                associativity: 8,
                hit_latency: 12,
            },
            l3: CacheConfig {
                size_bytes: 8 * 1024 * 1024,
                line_bytes: 64,
                associativity: 16,
                hit_latency: 34,
            },
            memory_latency: 200,
            tlb: TlbConfig::haswell(),
        }
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self::haswell()
    }
}

/// A three-level cache hierarchy with LRU replacement, write-allocate fills
/// and a non-inclusive (fill-all-levels) policy.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    config: HierarchyConfig,
    l1: SetAssocCache,
    l2: SetAssocCache,
    l3: SetAssocCache,
    tlb: Tlb,
    memory_accesses: u64,
    /// When `Some`, every access that misses L1 and L2 (and therefore
    /// reaches the L3 level) is recorded here for the multi-core shared-L3
    /// epoch merge. `None` (the default) costs nothing.
    l3_log: Option<Vec<L3Access>>,
}

impl Hierarchy {
    /// Builds an empty (cold) hierarchy.
    pub fn new(config: HierarchyConfig) -> Self {
        Self {
            config,
            l1: SetAssocCache::new(config.l1),
            l2: SetAssocCache::new(config.l2),
            l3: SetAssocCache::new(config.l3),
            tlb: Tlb::new(config.tlb),
            memory_accesses: 0,
            l3_log: None,
        }
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Performs one access, updating residency/LRU and returning its
    /// latency and the servicing level. Misses fill every level above the
    /// servicing one (write-allocate).
    pub fn access(&mut self, addr: Addr, kind: AccessKind) -> AccessResult {
        let write = kind == AccessKind::Write;
        // Address translation first: a DTLB miss adds STLB or page-walk
        // latency to whatever the data access costs.
        let xlat = self.tlb.translate(addr);
        if self.l1.access(addr, write) {
            return AccessResult {
                latency: self.config.l1.hit_latency + xlat,
                level: Level::L1,
            };
        }
        if self.l2.access(addr, write) {
            self.l1.fill(addr, write);
            return AccessResult {
                latency: self.config.l2.hit_latency + xlat,
                level: Level::L2,
            };
        }
        // The access reaches the L3 level: record it for the shared-L3
        // epoch merge if logging is on (hit or miss — the master must see
        // both to keep its LRU state faithful).
        if let Some(log) = &mut self.l3_log {
            log.push(L3Access { addr, write });
        }
        if self.l3.access(addr, write) {
            self.l2.fill(addr, write);
            self.l1.fill(addr, write);
            return AccessResult {
                latency: self.config.l3.hit_latency + xlat,
                level: Level::L3,
            };
        }
        self.memory_accesses += 1;
        self.l3.fill(addr, write);
        self.l2.fill(addr, write);
        self.l1.fill(addr, write);
        AccessResult {
            latency: self.config.memory_latency + xlat,
            level: Level::Memory,
        }
    }

    /// Checks where `addr` would hit, without changing any state.
    pub fn probe(&self, addr: Addr) -> Level {
        if self.l1.probe(addr) {
            Level::L1
        } else if self.l2.probe(addr) {
            Level::L2
        } else if self.l3.probe(addr) {
            Level::L3
        } else {
            Level::Memory
        }
    }

    /// Latency an access to `addr` *would* take right now, without
    /// performing it.
    pub fn peek_latency(&self, addr: Addr) -> u32 {
        match self.probe(addr) {
            Level::L1 => self.config.l1.hit_latency,
            Level::L2 => self.config.l2.hit_latency,
            Level::L3 => self.config.l3.hit_latency,
            Level::Memory => self.config.memory_latency,
        }
    }

    /// Warms `addr` into all levels without counting statistics noise
    /// (it still counts as an access internally).
    pub fn warm(&mut self, addr: Addr) {
        let _ = self.access(addr, AccessKind::Prefetch);
    }

    /// The paper's antagonist callback: invalidate the least-recently-used
    /// `fraction` of each set in L1 and L2.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn evict_antagonist(&mut self, fraction: f64) {
        self.l1.evict_lru_fraction(fraction);
        self.l2.evict_lru_fraction(fraction);
    }

    /// Flushes all levels (cold restart).
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
        self.l3.flush();
        self.tlb.flush();
    }

    /// TLB statistics.
    pub fn tlb_stats(&self) -> TlbStats {
        self.tlb.stats()
    }

    /// Per-level statistics `(L1, L2, L3)`.
    pub fn stats(&self) -> (CacheStats, CacheStats, CacheStats) {
        (self.l1.stats(), self.l2.stats(), self.l3.stats())
    }

    /// Number of accesses that went all the way to DRAM.
    pub fn memory_accesses(&self) -> u64 {
        self.memory_accesses
    }

    /// Resets all statistics counters (contents untouched).
    pub fn reset_stats(&mut self) {
        self.l1.reset_stats();
        self.l2.reset_stats();
        self.l3.reset_stats();
        self.memory_accesses = 0;
    }

    /// Turns recording of L3-level accesses on or off. Turning it on
    /// starts with an empty log; turning it off discards any entries.
    pub fn set_l3_logging(&mut self, on: bool) {
        self.l3_log = if on { Some(Vec::new()) } else { None };
    }

    /// Drains and returns the accesses recorded since logging was enabled
    /// or last drained. Empty if logging is off.
    pub fn take_l3_log(&mut self) -> Vec<L3Access> {
        match &mut self.l3_log {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    /// Replaces the private L3 replica with `snapshot` — the epoch refresh
    /// from a [`crate::SharedL3`] master. The replica's accumulated
    /// statistics are carried over so per-core L3 hit rates survive epoch
    /// boundaries.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's geometry differs from this hierarchy's L3.
    pub fn install_l3(&mut self, mut snapshot: SetAssocCache) {
        assert_eq!(
            *snapshot.config(),
            self.config.l3,
            "shared-L3 snapshot geometry must match the hierarchy's L3"
        );
        snapshot.add_stats(self.l3.stats());
        self.l3 = snapshot;
    }
}

impl Default for Hierarchy {
    fn default() -> Self {
        Self::new(HierarchyConfig::haswell())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_warm_hits() {
        let mut h = Hierarchy::default();
        let r = h.access(0x1000, AccessKind::Read);
        assert_eq!(r.level, Level::Memory);
        // DRAM plus the cold page walk.
        assert_eq!(r.latency, 200 + 30);
        let r = h.access(0x1000, AccessKind::Read);
        assert_eq!(r.level, Level::L1);
        assert_eq!(r.latency, 4, "warm access: TLB and L1 both hit");
        assert_eq!(h.tlb_stats().walks, 1);
    }

    #[test]
    fn l2_hit_after_l1_antagonism() {
        let mut h = Hierarchy::default();
        h.warm(0x1000);
        // Kick everything out of L1 but leave L2.
        h.l1.flush();
        let r = h.access(0x1000, AccessKind::Read);
        assert_eq!(r.level, Level::L2);
        assert_eq!(r.latency, 12);
        // And it is refilled into L1.
        assert_eq!(h.probe(0x1000), Level::L1);
    }

    #[test]
    fn l3_hit_after_l1_l2_antagonism() {
        let mut h = Hierarchy::default();
        h.warm(0x1000);
        h.evict_antagonist(1.0);
        let r = h.access(0x1000, AccessKind::Read);
        assert_eq!(r.level, Level::L3);
        assert_eq!(r.latency, 34);
    }

    #[test]
    fn antagonist_half_keeps_mru() {
        let mut h = Hierarchy::default();
        // One recently-touched line per set: it ranks in the MRU half and
        // must survive a half-set eviction.
        h.warm(0x0);
        h.warm(0x40);
        h.evict_antagonist(0.5);
        assert_eq!(h.probe(0x0), Level::L1);
        assert_eq!(h.probe(0x40), Level::L1);
        // A full-set eviction takes them out of L1/L2 (but not L3).
        h.evict_antagonist(1.0);
        assert_eq!(h.probe(0x0), Level::L3);
    }

    #[test]
    fn peek_latency_matches_access() {
        let mut h = Hierarchy::default();
        assert_eq!(h.peek_latency(0x2000), 200);
        h.warm(0x2000);
        assert_eq!(h.peek_latency(0x2000), 4);
        let r = h.access(0x2000, AccessKind::Read);
        assert_eq!(r.latency, 4);
    }

    #[test]
    fn writes_allocate() {
        let mut h = Hierarchy::default();
        let r = h.access(0x3000, AccessKind::Write);
        assert_eq!(r.level, Level::Memory);
        assert_eq!(h.probe(0x3000), Level::L1);
    }

    #[test]
    fn memory_access_counter() {
        let mut h = Hierarchy::default();
        h.access(0x0, AccessKind::Read);
        h.access(0x0, AccessKind::Read);
        h.access(0x10000, AccessKind::Read);
        assert_eq!(h.memory_accesses(), 2);
    }

    #[test]
    fn flush_makes_everything_cold() {
        let mut h = Hierarchy::default();
        h.warm(0x4000);
        h.flush();
        assert_eq!(h.probe(0x4000), Level::Memory);
    }

    #[test]
    fn stats_reset() {
        let mut h = Hierarchy::default();
        h.access(0x0, AccessKind::Read);
        h.reset_stats();
        let (l1, _, _) = h.stats();
        assert_eq!(l1.hits + l1.misses, 0);
        assert_eq!(h.memory_accesses(), 0);
    }

    #[test]
    fn prefetch_fills_like_read() {
        let mut h = Hierarchy::default();
        h.access(0x5000, AccessKind::Prefetch);
        assert_eq!(h.probe(0x5000), Level::L1);
    }
}
