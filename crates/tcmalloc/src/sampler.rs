//! The allocation sampler.
//!
//! TCMalloc samples allocations every N bytes for heap profiling: a
//! thread-local byte counter is decremented by each request's size and,
//! when it crosses zero, the allocation is sampled (stack trace captured)
//! and the counter reset (§3.3 "Sampling"). The decrement-and-branch on
//! every fast-path call is one of the three costs Mallacc removes, by
//! promoting the counter into a dedicated performance counter (§4.2).

/// The byte-countdown sampler.
///
/// # Example
///
/// ```
/// use mallacc_tcmalloc::Sampler;
///
/// let mut s = Sampler::new(1024);
/// let mut sampled = 0;
/// for _ in 0..100 {
///     if s.record_allocation(64) {
///         sampled += 1;
///     }
/// }
/// // 100 × 64 bytes = 6400 bytes ≈ 6 sampling events at a 1 KiB interval.
/// assert!((5..=7).contains(&sampled));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sampler {
    interval: u64,
    remaining: i64,
    samples: u64,
}

impl Sampler {
    /// TCMalloc's default sampling interval (512 KiB).
    pub const DEFAULT_INTERVAL: u64 = 512 * 1024;

    /// Creates a sampler firing every `interval_bytes` allocated bytes.
    ///
    /// # Panics
    ///
    /// Panics if `interval_bytes` is zero.
    pub fn new(interval_bytes: u64) -> Self {
        assert!(interval_bytes > 0, "sampling interval must be positive");
        Self {
            interval: interval_bytes,
            remaining: interval_bytes as i64,
            samples: 0,
        }
    }

    /// The configured interval in bytes.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Number of sampling events so far.
    pub fn samples_taken(&self) -> u64 {
        self.samples
    }

    /// Bytes left until the next sample fires.
    pub fn bytes_until_sample(&self) -> i64 {
        self.remaining
    }

    /// Accounts one allocation; returns `true` if this one is sampled.
    pub fn record_allocation(&mut self, bytes: u64) -> bool {
        self.remaining -= bytes as i64;
        if self.remaining <= 0 {
            self.remaining += self.interval as i64;
            if self.remaining <= 0 {
                // Huge allocation spanning multiple intervals: realign.
                self.remaining = self.interval as i64;
            }
            self.samples += 1;
            true
        } else {
            false
        }
    }
}

impl Default for Sampler {
    fn default() -> Self {
        Self::new(Self::DEFAULT_INTERVAL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_at_expected_rate() {
        let mut s = Sampler::new(1000);
        let mut hits = 0;
        for _ in 0..1000 {
            if s.record_allocation(100) {
                hits += 1;
            }
        }
        assert_eq!(hits, 100, "100k bytes at 1k interval = 100 samples");
        assert_eq!(s.samples_taken(), 100);
    }

    #[test]
    fn huge_allocation_samples_once() {
        let mut s = Sampler::new(1000);
        assert!(s.record_allocation(50_000));
        assert_eq!(s.samples_taken(), 1);
        assert!(s.bytes_until_sample() > 0);
    }

    #[test]
    fn small_allocations_do_not_sample_early() {
        let mut s = Sampler::new(1_000_000);
        for _ in 0..100 {
            assert!(!s.record_allocation(8));
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_interval_rejected() {
        Sampler::new(0);
    }

    #[test]
    fn fires_exactly_on_the_threshold() {
        // 999 of 1000 bytes: one byte short must not fire, the next
        // single byte must.
        let mut s = Sampler::new(1000);
        assert!(!s.record_allocation(999));
        assert_eq!(s.bytes_until_sample(), 1);
        assert!(s.record_allocation(1));
        assert_eq!(s.samples_taken(), 1);
        assert_eq!(s.bytes_until_sample(), 1000, "exact hit resets cleanly");
    }

    #[test]
    fn overshoot_carries_into_the_next_interval() {
        // Crossing the threshold by 300 bytes leaves only 700 until the
        // next sample: the counter preserves the byte phase, it does not
        // restart from the full interval.
        let mut s = Sampler::new(1000);
        assert!(s.record_allocation(1300));
        assert_eq!(s.bytes_until_sample(), 700);
        assert!(!s.record_allocation(699));
        assert!(s.record_allocation(1));
        assert_eq!(s.samples_taken(), 2);
    }

    #[test]
    fn multi_interval_allocation_realigns_to_a_full_interval() {
        // An allocation spanning several intervals fires once and then
        // realigns: the next sample is a full interval away.
        let mut s = Sampler::new(1000);
        assert!(s.record_allocation(3500));
        assert_eq!(s.samples_taken(), 1);
        assert_eq!(s.bytes_until_sample(), 1000);
    }

    /// The Mallacc replacement (§4.2): the byte countdown promoted into a
    /// dedicated performance counter that interrupts on underflow, so the
    /// fast path carries no decrement-and-branch µops. Architecturally it
    /// must fire on exactly the same allocations as the software sampler —
    /// this is the model the driver's PMU-interrupt path simulates.
    #[derive(Debug)]
    struct DedicatedCounter {
        interval: u64,
        counter: i64,
        interrupts: u64,
    }

    impl DedicatedCounter {
        fn new(interval: u64) -> Self {
            Self {
                interval,
                counter: interval as i64,
                interrupts: 0,
            }
        }

        /// Hardware decrement; returns `true` when the underflow
        /// interrupt fires.
        fn on_alloc(&mut self, bytes: u64) -> bool {
            self.counter -= bytes as i64;
            if self.counter <= 0 {
                self.counter += self.interval as i64;
                if self.counter <= 0 {
                    self.counter = self.interval as i64;
                }
                self.interrupts += 1;
                true
            } else {
                false
            }
        }
    }

    #[test]
    fn dedicated_counter_fires_on_the_same_allocations() {
        // A deterministic pseudo-random allocation stream mixing sizes
        // from 8 B to multi-interval: the firing index sets must be
        // identical, allocation by allocation.
        let mut sw = Sampler::new(4096);
        let mut hw = DedicatedCounter::new(4096);
        let mut state = 0x2545_f491_4f6c_dd1du64;
        for i in 0..10_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let bytes = match state % 100 {
                0..=79 => 8 + state % 1024,     // fast-path small objects
                80..=97 => 1024 + state % 8192, // medium
                _ => 16 * 1024 + state % 65536, // multi-interval
            };
            assert_eq!(
                sw.record_allocation(bytes),
                hw.on_alloc(bytes),
                "divergence at allocation {i} ({bytes} bytes)"
            );
            assert_eq!(sw.bytes_until_sample(), hw.counter, "phase drift at {i}");
        }
        assert_eq!(sw.samples_taken(), hw.interrupts);
        assert!(
            sw.samples_taken() > 100,
            "the stream crossed many intervals"
        );
    }
}
