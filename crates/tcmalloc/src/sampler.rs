//! The allocation sampler.
//!
//! TCMalloc samples allocations every N bytes for heap profiling: a
//! thread-local byte counter is decremented by each request's size and,
//! when it crosses zero, the allocation is sampled (stack trace captured)
//! and the counter reset (§3.3 "Sampling"). The decrement-and-branch on
//! every fast-path call is one of the three costs Mallacc removes, by
//! promoting the counter into a dedicated performance counter (§4.2).

/// The byte-countdown sampler.
///
/// # Example
///
/// ```
/// use mallacc_tcmalloc::Sampler;
///
/// let mut s = Sampler::new(1024);
/// let mut sampled = 0;
/// for _ in 0..100 {
///     if s.record_allocation(64) {
///         sampled += 1;
///     }
/// }
/// // 100 × 64 bytes = 6400 bytes ≈ 6 sampling events at a 1 KiB interval.
/// assert!((5..=7).contains(&sampled));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sampler {
    interval: u64,
    remaining: i64,
    samples: u64,
}

impl Sampler {
    /// TCMalloc's default sampling interval (512 KiB).
    pub const DEFAULT_INTERVAL: u64 = 512 * 1024;

    /// Creates a sampler firing every `interval_bytes` allocated bytes.
    ///
    /// # Panics
    ///
    /// Panics if `interval_bytes` is zero.
    pub fn new(interval_bytes: u64) -> Self {
        assert!(interval_bytes > 0, "sampling interval must be positive");
        Self {
            interval: interval_bytes,
            remaining: interval_bytes as i64,
            samples: 0,
        }
    }

    /// The configured interval in bytes.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Number of sampling events so far.
    pub fn samples_taken(&self) -> u64 {
        self.samples
    }

    /// Bytes left until the next sample fires.
    pub fn bytes_until_sample(&self) -> i64 {
        self.remaining
    }

    /// Accounts one allocation; returns `true` if this one is sampled.
    pub fn record_allocation(&mut self, bytes: u64) -> bool {
        self.remaining -= bytes as i64;
        if self.remaining <= 0 {
            self.remaining += self.interval as i64;
            if self.remaining <= 0 {
                // Huge allocation spanning multiple intervals: realign.
                self.remaining = self.interval as i64;
            }
            self.samples += 1;
            true
        } else {
            false
        }
    }
}

impl Default for Sampler {
    fn default() -> Self {
        Self::new(Self::DEFAULT_INTERVAL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_at_expected_rate() {
        let mut s = Sampler::new(1000);
        let mut hits = 0;
        for _ in 0..1000 {
            if s.record_allocation(100) {
                hits += 1;
            }
        }
        assert_eq!(hits, 100, "100k bytes at 1k interval = 100 samples");
        assert_eq!(s.samples_taken(), 100);
    }

    #[test]
    fn huge_allocation_samples_once() {
        let mut s = Sampler::new(1000);
        assert!(s.record_allocation(50_000));
        assert_eq!(s.samples_taken(), 1);
        assert!(s.bytes_until_sample() > 0);
    }

    #[test]
    fn small_allocations_do_not_sample_early() {
        let mut s = Sampler::new(1_000_000);
        for _ in 0..100 {
            assert!(!s.record_allocation(8));
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_interval_rejected() {
        Sampler::new(0);
    }
}
