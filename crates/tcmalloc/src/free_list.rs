//! Singly-linked free lists with the `next` pointer stored *inside* the
//! free block.
//!
//! TCMalloc saves metadata memory by storing each free block's `next`
//! pointer at the block's own address (§3.3: "*head is the value of the
//! next pointer"). The model keeps the list as a stack of addresses; the
//! block at depth `i` conceptually stores the address of the block at depth
//! `i + 1`. This is enough to know exactly which addresses a push or pop
//! dereferences — the two loads of the paper's Figure 7 — without a real
//! backing memory.

use mallacc_cache::Addr;

/// Result of a successful pop: the block handed to the caller and the new
/// head (the `next` value loaded from inside the popped block).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Popped {
    /// The block returned to the application.
    pub block: Addr,
    /// The new list head, i.e. `*block` (None when the list drained).
    pub new_head: Option<Addr>,
}

/// A LIFO free list of simulated block addresses.
///
/// # Example
///
/// ```
/// use mallacc_tcmalloc::FreeList;
///
/// let mut l = FreeList::new();
/// l.push(0x100);
/// l.push(0x200);
/// let p = l.pop().unwrap();
/// assert_eq!(p.block, 0x200);           // LIFO
/// assert_eq!(p.new_head, Some(0x100));  // next pointer loaded from *0x200
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FreeList {
    /// Stack of blocks; the head is the last element.
    items: Vec<Addr>,
    /// High-water mark used by scavenging heuristics.
    max_observed: usize,
}

impl FreeList {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of blocks on the list.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the list has no blocks.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The current head (the block a pop would return).
    pub fn head(&self) -> Option<Addr> {
        self.items.last().copied()
    }

    /// The second element — the head's stored `next` pointer.
    pub fn next_after_head(&self) -> Option<Addr> {
        if self.items.len() >= 2 {
            Some(self.items[self.items.len() - 2])
        } else {
            None
        }
    }

    /// Pushes a freed block onto the head.
    pub fn push(&mut self, block: Addr) {
        self.items.push(block);
        self.max_observed = self.max_observed.max(self.items.len());
    }

    /// Pushes a batch, preserving order so the last element becomes head.
    pub fn push_batch<I: IntoIterator<Item = Addr>>(&mut self, blocks: I) {
        for b in blocks {
            self.push(b);
        }
    }

    /// Pops the head.
    pub fn pop(&mut self) -> Option<Popped> {
        let block = self.items.pop()?;
        Some(Popped {
            block,
            new_head: self.items.last().copied(),
        })
    }

    /// Pops up to `n` blocks (for batch transfers back to the central list).
    pub fn pop_batch(&mut self, n: usize) -> Vec<Addr> {
        let take = n.min(self.items.len());
        self.items.split_off(self.items.len() - take)
    }

    /// Iterates from head to tail.
    pub fn iter(&self) -> impl Iterator<Item = Addr> + '_ {
        self.items.iter().rev().copied()
    }
}

impl Extend<Addr> for FreeList {
    fn extend<I: IntoIterator<Item = Addr>>(&mut self, iter: I) {
        self.push_batch(iter);
    }
}

impl FromIterator<Addr> for FreeList {
    fn from_iter<I: IntoIterator<Item = Addr>>(iter: I) -> Self {
        let mut l = FreeList::new();
        l.push_batch(iter);
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut l = FreeList::new();
        l.push(1);
        l.push(2);
        l.push(3);
        assert_eq!(l.pop().unwrap().block, 3);
        assert_eq!(l.pop().unwrap().block, 2);
        assert_eq!(l.pop().unwrap().block, 1);
        assert_eq!(l.pop(), None);
    }

    #[test]
    fn new_head_tracks_next() {
        let mut l: FreeList = [10u64, 20, 30].into_iter().collect();
        assert_eq!(l.head(), Some(30));
        assert_eq!(l.next_after_head(), Some(20));
        let p = l.pop().unwrap();
        assert_eq!(p.new_head, Some(20));
        l.pop();
        let last = l.pop().unwrap();
        assert_eq!(last.new_head, None);
    }

    #[test]
    fn pop_batch_takes_from_head() {
        let mut l: FreeList = (1..=5u64).collect();
        let batch = l.pop_batch(2);
        assert_eq!(batch, vec![4, 5]);
        assert_eq!(l.len(), 3);
        assert_eq!(l.head(), Some(3));
    }

    #[test]
    fn pop_batch_clamps() {
        let mut l: FreeList = (1..=2u64).collect();
        assert_eq!(l.pop_batch(10).len(), 2);
        assert!(l.is_empty());
    }

    #[test]
    fn iter_is_head_to_tail() {
        let l: FreeList = [1u64, 2, 3].into_iter().collect();
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![3, 2, 1]);
    }
}
