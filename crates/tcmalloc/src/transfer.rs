//! The transfer cache: batch-granularity slots between thread caches and
//! the central free lists.
//!
//! Real TCMalloc keeps, per size class, an array of `num_objects_to_move`
//! sized entries (`kNumTransferEntries`) in front of the span-based central
//! list. A thread cache releasing a full batch parks it in a slot with a
//! couple of pointer writes; a refilling thread cache grabs a parked batch
//! without touching span free lists at all. Only when the slots are full
//! (or empty) does traffic fall through to the central list proper. In the
//! producer–consumer pattern — thread A mallocs, thread B frees — almost
//! all cross-thread block migration flows through here, which is why the
//! multi-core model needs it: the remote-free → transfer-cache →
//! central-list cascade has three distinct costs.

use mallacc_cache::Addr;

/// Statistics for one class's transfer cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransferStats {
    /// Batches parked in a slot by a releasing thread cache.
    pub insert_hits: u64,
    /// Batches that found the slots full and spilled to the central list.
    pub insert_spills: u64,
    /// Refills served from a parked batch.
    pub remove_hits: u64,
    /// Refills that found no parked batch and fell through to central.
    pub remove_misses: u64,
}

/// Batch-granularity cache in front of one central free list.
#[derive(Debug, Clone)]
pub struct TransferCache {
    /// Parked batches, each exactly `batch_size` objects.
    slots: Vec<Vec<Addr>>,
    max_slots: usize,
    batch_size: usize,
    stats: TransferStats,
}

impl TransferCache {
    /// TCMalloc's `kNumTransferEntries`: slots per size class.
    pub const MAX_SLOTS: usize = 64;

    /// An empty transfer cache moving batches of `batch_size` objects.
    pub fn new(batch_size: usize) -> Self {
        Self {
            slots: Vec::new(),
            max_slots: Self::MAX_SLOTS,
            batch_size: batch_size.max(1),
            stats: TransferStats::default(),
        }
    }

    /// The batch size (the class's `num_objects_to_move`).
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Parked batches.
    pub fn slots_used(&self) -> usize {
        self.slots.len()
    }

    /// Total objects currently parked.
    pub fn len(&self) -> usize {
        self.slots.iter().map(Vec::len).sum()
    }

    /// True if no batches are parked.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TransferStats {
        self.stats
    }

    /// Tries to park a released batch. Full batches go into a slot when
    /// one is free; anything else is handed back for the central list
    /// (`Err` carries the batch unchanged).
    pub fn try_insert(&mut self, batch: Vec<Addr>) -> Result<(), Vec<Addr>> {
        if batch.len() == self.batch_size && self.slots.len() < self.max_slots {
            self.slots.push(batch);
            self.stats.insert_hits += 1;
            Ok(())
        } else {
            self.stats.insert_spills += 1;
            Err(batch)
        }
    }

    /// Tries to serve a refill of `n` objects from a parked batch. Only
    /// exact-batch requests hit (TCMalloc moves whole batches here).
    pub fn try_remove(&mut self, n: usize) -> Option<Vec<Addr>> {
        if n == self.batch_size {
            if let Some(batch) = self.slots.pop() {
                self.stats.remove_hits += 1;
                return Some(batch);
            }
        }
        self.stats.remove_misses += 1;
        None
    }

    /// Drains every parked batch (used when the central list must absorb
    /// everything, e.g. accounting in tests).
    pub fn drain(&mut self) -> Vec<Addr> {
        self.slots.drain(..).flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_batch() {
        let mut t = TransferCache::new(4);
        t.try_insert(vec![0x100, 0x140, 0x180, 0x1C0]).unwrap();
        assert_eq!(t.slots_used(), 1);
        assert_eq!(t.len(), 4);
        let b = t.try_remove(4).unwrap();
        assert_eq!(b, vec![0x100, 0x140, 0x180, 0x1C0]);
        assert!(t.is_empty());
    }

    #[test]
    fn wrong_sized_batches_spill() {
        let mut t = TransferCache::new(4);
        let back = t.try_insert(vec![0x100, 0x140]).unwrap_err();
        assert_eq!(back.len(), 2);
        assert_eq!(t.stats().insert_spills, 1);
        assert!(t.try_remove(2).is_none());
    }

    #[test]
    fn lifo_order_across_slots() {
        let mut t = TransferCache::new(2);
        t.try_insert(vec![0x100, 0x140]).unwrap();
        t.try_insert(vec![0x200, 0x240]).unwrap();
        assert_eq!(t.try_remove(2).unwrap(), vec![0x200, 0x240]);
        assert_eq!(t.try_remove(2).unwrap(), vec![0x100, 0x140]);
    }

    #[test]
    fn slots_saturate_at_capacity() {
        let mut t = TransferCache::new(1);
        for i in 0..TransferCache::MAX_SLOTS {
            t.try_insert(vec![0x1000 + i as Addr * 64]).unwrap();
        }
        let spilled = t.try_insert(vec![0xFFFF_0000]).unwrap_err();
        assert_eq!(spilled, vec![0xFFFF_0000]);
        assert_eq!(t.slots_used(), TransferCache::MAX_SLOTS);
    }

    #[test]
    fn drain_returns_everything() {
        let mut t = TransferCache::new(2);
        t.try_insert(vec![0x100, 0x140]).unwrap();
        t.try_insert(vec![0x200, 0x240]).unwrap();
        let all = t.drain();
        assert_eq!(all.len(), 4);
        assert!(t.is_empty());
    }
}
