//! A functional model of Google's TCMalloc, built for the Mallacc
//! (ASPLOS 2017) reproduction.
//!
//! This crate reimplements, over a *simulated* address space, every
//! TCMalloc structure the paper's evaluation touches:
//!
//! * [`SizeClasses`] — the 2007-era size-class table (≈ 88 classes) and the
//!   exact two-piece class-index function of the paper's Figure 5;
//! * [`FreeList`] — thread-cache free lists that store each free block's
//!   `next` pointer *inside* the block (the dependent-load chain of
//!   Figure 7 that Mallacc's malloc cache short-circuits);
//! * [`CentralFreeList`] — the shared middle pool with batched object
//!   migration and span carving;
//! * [`PageHeap`] — spans, per-length free lists, splitting, coalescing and
//!   a page map;
//! * [`Sampler`] — the bytes-until-sample countdown of §3.3;
//! * [`TcMalloc`] — the assembled allocator. Every call returns a
//!   [`MallocOutcome`]/[`FreeOutcome`] that records the path taken and the
//!   addresses touched, which the timing layer turns into micro-op
//!   programs.
//!
//! The default build has one thread cache, matching the paper's
//! single-core simulations; [`TcMalloc::with_threads`] instantiates the
//! full §3.1 structure — per-thread caches over a per-class
//! [`TransferCache`] over shared central lists — for the multi-core
//! extension. Remote frees (thread B freeing thread A's block) are
//! tracked per call so the timing layer can price cross-thread traffic.
//!
//! # Example
//!
//! ```
//! use mallacc_tcmalloc::{TcMalloc, MallocPath};
//!
//! let mut a = TcMalloc::default();
//! let warm = a.malloc(100);          // cold: central refill
//! a.free(warm.ptr, true);
//! let hit = a.malloc(100);           // warm: thread-cache hit
//! assert!(matches!(hit.path, MallocPath::ThreadCacheHit { .. }));
//! assert_eq!(hit.alloc_size, 104);   // 100 rounds up to its class size
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod allocator;
mod central;
mod free_list;
pub mod layout;
mod page_heap;
mod sampler;
mod size_class;
mod transfer;

pub use allocator::{
    AllocStats, FreeOutcome, FreePath, MallocOutcome, MallocPath, TcMalloc, TcMallocConfig,
};
pub use central::{CentralFreeList, CentralStats, Populate, RemoveRange};
pub use free_list::{FreeList, Popped};
pub use page_heap::{PageHeap, PageHeapStats, Span, SpanAlloc, SpanId, SpanState};
pub use sampler::Sampler;
pub use size_class::{class_array_len, class_index, consts, ClassId, ClassInfo, SizeClasses};
pub use transfer::{TransferCache, TransferStats};
