//! TCMalloc size-class generation and the size → class index mapping.
//!
//! This reimplements the size-class machinery of TCMalloc as open-sourced in
//! 2007 (the revision the paper studies):
//!
//! * the two-piece *class index* function of the paper's Figure 5 —
//!   `(size + 7) >> 3` for sizes ≤ 1024 and `(size + 15487) >> 7` above —
//!   giving 2169 class-index slots ("slightly above 2100" per the paper);
//! * the class construction loop that walks candidate sizes at
//!   alignment-dependent strides, picks a span length whose slack is at most
//!   1/8 of the span, and merges classes with identical span/object layout —
//!   producing the familiar ≈ 88 classes;
//! * `num_objects_to_move`, the batch size used when migrating objects
//!   between thread caches and central free lists.

/// Identifier of one size class (1-based like TCMalloc; 0 is reserved).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub(crate) u8);

impl ClassId {
    /// The raw class number, in `1..=num_classes`.
    pub fn as_u8(self) -> u8 {
        self.0
    }

    /// Rebuilds a class id from its raw number — the 8-bit form the
    /// hardware's size-class CAM stores. The number is not range-checked
    /// against a particular table; use [`SizeClasses::class_info`] with a
    /// valid table to validate.
    ///
    /// # Panics
    ///
    /// Panics if `raw` is zero (class 0 is reserved).
    pub fn from_raw(raw: u8) -> Self {
        assert!(raw > 0, "class 0 is reserved");
        ClassId(raw)
    }
}

impl std::fmt::Display for ClassId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "class{}", self.0)
    }
}

/// Allocator geometry constants (the 2007 open-sourcing values).
pub mod consts {
    /// Minimum alignment of any allocation, bytes.
    pub const ALIGNMENT: u64 = 8;
    /// Largest "small" allocation served by thread caches, bytes (256 KiB).
    pub const MAX_SIZE: u64 = 256 * 1024;
    /// TCMalloc page size, bytes (8 KiB).
    pub const PAGE_SIZE: u64 = 8 * 1024;
    /// Log2 of the page size.
    pub const PAGE_SHIFT: u32 = 13;
    /// Boundary between the two class-index encodings.
    pub const SMALL_INDEX_LIMIT: u64 = 1024;
    /// Maximum per-thread cache size before scavenging (2 MiB, §3.1).
    pub const MAX_THREAD_CACHE_BYTES: u64 = 2 * 1024 * 1024;
}

/// Static description of one size class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassInfo {
    /// Rounded allocation size in bytes.
    pub size: u64,
    /// Pages per span fetched from the page heap for this class.
    pub pages: u64,
    /// Objects moved per thread-cache ↔ central-list batch.
    pub num_to_move: u32,
}

/// The full size-class table: class metadata plus the `class_array` mapping
/// class indices to classes.
///
/// # Example
///
/// ```
/// use mallacc_tcmalloc::SizeClasses;
///
/// let sc = SizeClasses::tcmalloc_2007();
/// // The paper: "TCMalloc currently has 88 size classes".
/// assert!((80..=96).contains(&sc.num_classes()));
/// let cls = sc.size_class(13).unwrap();
/// assert_eq!(sc.class_to_size(cls), 16); // 13 rounds up to 16
/// ```
#[derive(Debug, Clone)]
pub struct SizeClasses {
    classes: Vec<ClassInfo>,
    /// class_array: class index → size class (1-based; entry 0 unused).
    class_array: Vec<u8>,
}

/// The paper's Figure 5 class-index function.
///
/// Returns `None` for sizes above the small-allocation threshold (256 KiB),
/// which bypass the thread caches entirely.
///
/// # Example
///
/// ```
/// use mallacc_tcmalloc::class_index;
///
/// assert_eq!(class_index(0), Some(0));
/// assert_eq!(class_index(8), Some(1));
/// assert_eq!(class_index(1024), Some(128));
/// assert_eq!(class_index(1025), Some((1025 + 15487) >> 7));
/// assert_eq!(class_index(256 * 1024 + 1), None);
/// ```
pub fn class_index(size: u64) -> Option<u64> {
    if size <= consts::SMALL_INDEX_LIMIT {
        Some((size + 7) >> 3)
    } else if size <= consts::MAX_SIZE {
        Some((size + 15487) >> 7)
    } else {
        None
    }
}

/// Largest valid class index plus one (the length of `class_array`).
pub fn class_array_len() -> usize {
    (class_index(consts::MAX_SIZE).expect("MAX_SIZE is small") + 1) as usize
}

fn lg_floor(n: u64) -> u32 {
    63 - n.leading_zeros()
}

/// TCMalloc's `AlignmentForSize`: the stride at which candidate class sizes
/// are enumerated.
fn alignment_for_size(size: u64) -> u64 {
    let mut align = consts::ALIGNMENT;
    if size > consts::MAX_SIZE {
        align = consts::PAGE_SIZE;
    } else if size >= 128 {
        // Cap wasted space at ~12.5%: stride = 2^floor(lg size) / 8.
        align = (1u64 << lg_floor(size)) / 8;
    }
    align.clamp(consts::ALIGNMENT, consts::PAGE_SIZE)
}

/// TCMalloc's batch size for moving objects between cache levels.
fn num_objects_to_move(size: u64) -> u32 {
    ((64 * 1024) / size).clamp(2, 32) as u32
}

impl SizeClasses {
    /// Builds the 2007-era TCMalloc size-class table.
    pub fn tcmalloc_2007() -> Self {
        let mut classes: Vec<ClassInfo> = Vec::new();
        let mut size = consts::ALIGNMENT;
        while size <= consts::MAX_SIZE {
            // Pick a span size whose leftover slack is ≤ 1/8 of the span.
            let mut span_bytes = consts::PAGE_SIZE;
            while (span_bytes % size) > (span_bytes >> 3) {
                span_bytes += consts::PAGE_SIZE;
            }
            let pages = span_bytes / consts::PAGE_SIZE;
            let my_objects = span_bytes / size;
            // Merge with the previous class when the span layout is
            // identical — the previous (smaller) class was redundant.
            if let Some(prev) = classes.last_mut() {
                let prev_span = prev.pages * consts::PAGE_SIZE;
                if pages == prev.pages && prev_span / prev.size == my_objects {
                    *prev = ClassInfo {
                        size,
                        pages,
                        num_to_move: num_objects_to_move(size),
                    };
                    size += alignment_for_size(size);
                    continue;
                }
            }
            classes.push(ClassInfo {
                size,
                pages,
                num_to_move: num_objects_to_move(size),
            });
            size += alignment_for_size(size);
        }
        assert!(
            classes.len() < 256,
            "class ids must fit in a byte, got {}",
            classes.len()
        );

        // Populate class_array: every index maps to the smallest class whose
        // size covers the largest request size with that index.
        let mut class_array = vec![0u8; class_array_len()];
        let mut next_size = 0u64;
        for (c, info) in classes.iter().enumerate() {
            while next_size <= info.size {
                if let Some(idx) = class_index(next_size) {
                    class_array[idx as usize] = (c + 1) as u8;
                }
                next_size += consts::ALIGNMENT;
            }
        }
        Self {
            classes,
            class_array,
        }
    }

    /// Number of size classes (≈ 88 for the 2007 parameters).
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Maps a requested size to its size class, or `None` for large
    /// requests (> 256 KiB) that bypass the thread cache.
    pub fn size_class(&self, size: u64) -> Option<ClassId> {
        let idx = class_index(size)?;
        let c = self.class_array[idx as usize];
        debug_assert!(c > 0, "class_array not populated for index {idx}");
        Some(ClassId(c))
    }

    /// The rounded allocation size for a class.
    ///
    /// # Panics
    ///
    /// Panics if `cls` is out of range.
    pub fn class_to_size(&self, cls: ClassId) -> u64 {
        self.classes[(cls.0 - 1) as usize].size
    }

    /// Full metadata for a class.
    ///
    /// # Panics
    ///
    /// Panics if `cls` is out of range.
    pub fn class_info(&self, cls: ClassId) -> ClassInfo {
        self.classes[(cls.0 - 1) as usize]
    }

    /// Iterates over `(ClassId, ClassInfo)` pairs in increasing size order.
    pub fn iter(&self) -> impl Iterator<Item = (ClassId, ClassInfo)> + '_ {
        self.classes
            .iter()
            .enumerate()
            .map(|(i, &info)| (ClassId((i + 1) as u8), info))
    }

    /// The class covering the largest small request (256 KiB).
    pub fn largest_class(&self) -> ClassId {
        ClassId(self.classes.len() as u8)
    }
}

impl Default for SizeClasses {
    fn default() -> Self {
        Self::tcmalloc_2007()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sc() -> SizeClasses {
        SizeClasses::tcmalloc_2007()
    }

    #[test]
    fn class_count_is_roughly_88() {
        let n = sc().num_classes();
        assert!((80..=96).contains(&n), "got {n} classes");
    }

    #[test]
    fn class_array_len_matches_paper() {
        // "slightly above 2100" — exactly ((262144 + 15487) >> 7) + 1 = 2169.
        assert_eq!(class_array_len(), 2169);
    }

    #[test]
    fn rounding_is_monotone_and_covers() {
        let sc = sc();
        let mut prev = 0;
        for size in (0..=consts::MAX_SIZE).step_by(61) {
            let cls = sc.size_class(size).expect("small size has a class");
            let rounded = sc.class_to_size(cls);
            assert!(rounded >= size, "class size {rounded} < request {size}");
            assert!(rounded >= prev, "rounded sizes must be monotone");
            prev = rounded;
        }
    }

    #[test]
    fn rounding_is_idempotent() {
        let sc = sc();
        for size in [1u64, 8, 9, 100, 1024, 1025, 4096, 100_000, 262_144] {
            let cls = sc.size_class(size).unwrap();
            let rounded = sc.class_to_size(cls);
            let cls2 = sc.size_class(rounded).unwrap();
            assert_eq!(cls, cls2, "rounding {size} → {rounded} changed class");
        }
    }

    #[test]
    fn small_sizes_are_8_byte_spaced() {
        let sc = sc();
        assert_eq!(sc.class_to_size(sc.size_class(1).unwrap()), 8);
        assert_eq!(sc.class_to_size(sc.size_class(9).unwrap()), 16);
        assert_eq!(sc.class_to_size(sc.size_class(17).unwrap()), 24);
        assert_eq!(sc.class_to_size(sc.size_class(33).unwrap()), 40);
    }

    #[test]
    fn large_requests_have_no_class() {
        let sc = sc();
        assert_eq!(sc.size_class(consts::MAX_SIZE + 1), None);
        assert!(sc.size_class(consts::MAX_SIZE).is_some());
    }

    #[test]
    fn fragmentation_bound_holds() {
        // Span slack ≤ 1/8 of the span for every class.
        for (_, info) in sc().iter() {
            let span = info.pages * consts::PAGE_SIZE;
            let slack = span % info.size;
            assert!(
                slack <= span / 8,
                "class size {} wastes {slack} of {span}",
                info.size
            );
        }
    }

    #[test]
    fn num_to_move_bounds() {
        for (_, info) in sc().iter() {
            assert!((2..=32).contains(&info.num_to_move));
        }
        let sc = sc();
        let tiny = sc.size_class(8).unwrap();
        assert_eq!(sc.class_info(tiny).num_to_move, 32);
        let big = sc.largest_class();
        assert_eq!(sc.class_info(big).num_to_move, 2);
    }

    #[test]
    fn zero_size_request_is_class_one() {
        let sc = sc();
        // malloc(0) returns a minimal allocation in TCMalloc.
        assert_eq!(sc.size_class(0), Some(ClassId(1)));
    }

    #[test]
    fn class_sizes_strictly_increase() {
        let sizes: Vec<u64> = sc().iter().map(|(_, i)| i.size).collect();
        for w in sizes.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert_eq!(*sizes.last().unwrap(), consts::MAX_SIZE);
    }

    #[test]
    fn figure5_index_function_values() {
        // Spot checks straight from the paper's Figure 5 arithmetic.
        assert_eq!(class_index(512), Some((512 + 7) >> 3));
        assert_eq!(class_index(2000), Some((2000 + 15487) >> 7));
    }

    #[test]
    fn alignment_for_size_steps() {
        assert_eq!(alignment_for_size(8), 8);
        assert_eq!(alignment_for_size(127), 8);
        assert_eq!(alignment_for_size(128), 16);
        assert_eq!(alignment_for_size(256), 32);
        assert_eq!(alignment_for_size(4096), 512);
        assert_eq!(alignment_for_size(300_000), consts::PAGE_SIZE);
    }
}
