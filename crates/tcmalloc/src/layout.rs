//! The simulated address-space layout of the allocator's own data
//! structures.
//!
//! The timing model needs *addresses* for every allocator memory touch —
//! the class-index array load, the size-table load, the thread-cache free
//! list header, the freed blocks themselves, the central list and page-map
//! structures — because which of those are resident in the simulated caches
//! is precisely what separates an 18-cycle fast path from a 100-cycle one
//! (§3.2 of the paper).
//!
//! Addresses here are synthetic but stable and non-overlapping, laid out the
//! way the real structures are: the two static tables are contiguous and
//! dense (they cache extremely well), each thread-cache free list header is
//! a small struct at a fixed TLS offset, central free lists are cache-line
//! padded (they are lock-protected), and the page map is a three-level
//! radix tree.

use mallacc_cache::Addr;

use crate::size_class::ClassId;

/// Base of the static tables (`class_array`, `size_table`, ...).
pub const STATIC_BASE: Addr = 0x0100_0000;
/// Base of the thread-local allocator state (thread cache, sampler).
pub const TLS_BASE: Addr = 0x0200_0000;
/// Base of the central free list structures.
pub const CENTRAL_BASE: Addr = 0x0300_0000;
/// Base of the synthetic page-map radix nodes.
pub const PAGEMAP_BASE: Addr = 0x0400_0000;
/// Base of span metadata objects (above the 128 MiB page-map arena).
pub const SPAN_META_BASE: Addr = 0x0C00_0000;
/// Base of the simulated heap the allocator carves objects from.
pub const HEAP_BASE: Addr = 0x10_0000_0000;

/// Byte stride of one thread-cache `FreeList` header (head pointer, length,
/// max-length, low-water mark — half a cache line, as in TCMalloc).
pub const FREE_LIST_STRIDE: u64 = 32;

/// Address of `class_array[idx]` (one byte per entry).
pub fn class_array_entry(idx: u64) -> Addr {
    STATIC_BASE + idx
}

/// Address of `size_table[cls]` (eight bytes per entry).
pub fn size_table_entry(cls: ClassId) -> Addr {
    STATIC_BASE + 0x1_0000 + u64::from(cls.as_u8()) * 8
}

/// Byte stride between the TLS blocks of successive threads.
pub const TLS_THREAD_STRIDE: u64 = 0x2_0000;

/// Address of thread `tid`'s free-list header for `cls`.
pub fn thread_list_header_on(tid: usize, cls: ClassId) -> Addr {
    TLS_BASE + tid as u64 * TLS_THREAD_STRIDE + 0x100 + u64::from(cls.as_u8()) * FREE_LIST_STRIDE
}

/// Address of the thread-cache free list header for `cls` (thread 0).
pub fn thread_list_header(cls: ClassId) -> Addr {
    thread_list_header_on(0, cls)
}

/// Address of thread `tid`'s aggregate metadata (total size field).
pub fn thread_cache_meta_on(tid: usize) -> Addr {
    TLS_BASE + tid as u64 * TLS_THREAD_STRIDE + 0x40
}

/// Address of the thread cache's aggregate metadata (thread 0).
pub fn thread_cache_meta() -> Addr {
    thread_cache_meta_on(0)
}

/// Address of thread `tid`'s bytes-until-sample counter.
pub fn sampler_counter_on(tid: usize) -> Addr {
    TLS_BASE + tid as u64 * TLS_THREAD_STRIDE + 0x80
}

/// Address of the sampler's bytes-until-sample counter (thread 0).
pub fn sampler_counter() -> Addr {
    sampler_counter_on(0)
}

/// Address of the central free list structure for `cls` (cache-line padded
/// because each holds a lock).
pub fn central_list(cls: ClassId) -> Addr {
    CENTRAL_BASE + u64::from(cls.as_u8()) * 256
}

/// Addresses of the three radix-tree nodes visited when looking up `page`
/// in the page map. The root is tiny and hot; interior and leaf nodes are
/// heap-allocated on demand and land on *scattered* pages — which is why
/// the paper notes the free() lookup "tends to cache poorly, especially in
/// the TLB". Each leaf node covers 512 heap pages; its own placement is a
/// multiplicative hash of its index so consecutive heap regions map to
/// distant translation pages, as real on-demand radix allocation does.
pub fn pagemap_node_addrs(page: u64) -> [Addr; 3] {
    let interior = (page >> 12) & 0xFF_FFFF;
    // Each leaf covers 64 heap pages. (Real TCMalloc leaves cover more of
    // a multi-GiB heap; our simulated heaps are ~100× smaller, so the leaf
    // granularity is scaled down to preserve the *density* of distinct,
    // scattered radix pages a production free() stream touches.)
    let leaf_node = page >> 6;
    // Fibonacci hashing spreads node placements over two 64 MiB arenas
    // (interior nodes, then leaves), within the 128 MiB page-map region.
    let scatter = |n: u64| (n.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 50) & 0x3FFF;
    [
        PAGEMAP_BASE + ((page >> 24) & 0x1FF) * 8,
        PAGEMAP_BASE + 0x2000 + scatter(interior) * 4096 + (interior & 0x1FF) * 8,
        PAGEMAP_BASE + 0x400_0000 + scatter(leaf_node) * 4096 + (page & 0x3F) * 8,
    ]
}

/// Address of the span metadata object with slab index `span_id`
/// (64 bytes per span).
pub fn span_meta(span_id: usize) -> Addr {
    SPAN_META_BASE + span_id as u64 * 64
}

/// Byte address of the start of heap page `page`.
pub fn page_addr(page: u64) -> Addr {
    HEAP_BASE + page * crate::size_class::consts::PAGE_SIZE
}

/// Heap page containing byte address `addr`.
///
/// # Panics
///
/// Panics if `addr` is below the heap base.
pub fn addr_to_page(addr: Addr) -> u64 {
    assert!(addr >= HEAP_BASE, "address {addr:#x} is not a heap address");
    (addr - HEAP_BASE) >> crate::size_class::consts::PAGE_SHIFT
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::size_class::SizeClasses;

    #[test]
    fn regions_do_not_overlap() {
        let sc = SizeClasses::tcmalloc_2007();
        let last_cls = sc.largest_class();
        assert!(class_array_entry(2170) < size_table_entry(ClassId(1)));
        assert!(size_table_entry(last_cls) < TLS_BASE);
        assert!(thread_list_header(last_cls) < CENTRAL_BASE);
        assert!(central_list(last_cls) < PAGEMAP_BASE);
        assert!(span_meta(1_000_000) < HEAP_BASE);
    }

    #[test]
    fn page_round_trip() {
        for page in [0u64, 1, 17, 12345] {
            assert_eq!(addr_to_page(page_addr(page)), page);
            assert_eq!(addr_to_page(page_addr(page) + 8191), page);
        }
    }

    #[test]
    #[should_panic(expected = "not a heap address")]
    fn non_heap_address_rejected() {
        addr_to_page(STATIC_BASE);
    }

    #[test]
    fn list_headers_are_distinct() {
        let a = thread_list_header(ClassId(1));
        let b = thread_list_header(ClassId(2));
        assert_eq!(b - a, FREE_LIST_STRIDE);
    }

    #[test]
    fn pagemap_nodes_distinct_per_level() {
        let [a, b, c] = pagemap_node_addrs(42);
        assert!(a < b && b < c);
    }
}
