//! The assembled TCMalloc model: thread cache over central free lists over
//! the page heap, with sampling.
//!
//! [`TcMalloc::malloc`] and [`TcMalloc::free`] are *functional*: they
//! maintain real free lists, spans and a page map over a simulated address
//! space and return an *outcome* describing exactly which path the request
//! took and which addresses it touched. The timing layer (the `mallacc`
//! crate) translates outcomes into micro-op programs for the core model —
//! so the cycle distributions of the paper's Figure 1 emerge from the same
//! pool hierarchy that produced them in the original system.

use std::collections::HashMap;

use mallacc_cache::Addr;

use crate::central::{CentralFreeList, Populate};
use crate::free_list::FreeList;
use crate::layout;
use crate::page_heap::{PageHeap, SpanId};
use crate::sampler::Sampler;
use crate::size_class::{class_index, consts, ClassId, SizeClasses};
use crate::transfer::{TransferCache, TransferStats};

/// Which pool ultimately served a malloc call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MallocPath {
    /// Fast path: popped straight off the thread-cache free list.
    ThreadCacheHit {
        /// Address of the free-list header in the thread cache.
        list: Addr,
        /// The new head loaded from inside the popped block (`*head`).
        next: Option<Addr>,
    },
    /// Thread-cache miss: fetched a batch from the central free list.
    CentralRefill {
        /// Address of the thread-cache free-list header.
        list: Addr,
        /// Address of the central list's lock-protected header.
        central: Addr,
        /// Objects moved into the thread cache (last becomes the head).
        batch: Vec<Addr>,
        /// Present when the central list had to carve a fresh span.
        populate: Option<Populate>,
        /// New head after popping the returned object.
        next: Option<Addr>,
        /// The batch came from a transfer-cache slot, not the central
        /// list's span free lists — a cheaper, lower-contention fetch.
        via_transfer: bool,
        /// A dry central list was restocked by stealing from this
        /// neighbour's thread cache. The victim's list head changed
        /// underneath it, so the multi-core timing layer must invalidate
        /// the victim core's malloc-cache entry for this class.
        stole_from: Option<usize>,
    },
    /// Large request (> 256 KiB): served by the page heap directly.
    Large {
        /// Pages allocated.
        pages: u64,
        /// Whether an OS grant was needed.
        grew_heap: bool,
    },
}

/// Result of one malloc call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MallocOutcome {
    /// The address handed to the application.
    pub ptr: Addr,
    /// The requested size.
    pub requested: u64,
    /// The rounded allocation size.
    pub alloc_size: u64,
    /// Size class (None for large allocations).
    pub cls: Option<ClassId>,
    /// The Figure 5 class index (None for large allocations).
    pub class_index: Option<u64>,
    /// Whether the sampler fired on this request.
    pub sampled: bool,
    /// Which pool served the request.
    pub path: MallocPath,
}

/// Which path a free call took.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FreePath {
    /// Fast path: pushed onto the thread-cache free list.
    ThreadCachePush {
        /// Address of the free-list header.
        list: Addr,
        /// The previous head, stored into the freed block as its `next`.
        old_head: Option<Addr>,
        /// Objects released to the central list when the list overflowed.
        released: Option<Vec<Addr>>,
        /// The released batch parked in a transfer-cache slot instead of
        /// going through the central list's lock.
        released_to_transfer: bool,
    },
    /// Large free: span returned to the page heap.
    Large {
        /// Pages returned.
        pages: u64,
    },
}

/// Result of one free call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreeOutcome {
    /// The freed address.
    pub ptr: Addr,
    /// Size class of the freed block (None for large).
    pub cls: Option<ClassId>,
    /// Rounded size of the freed block.
    pub alloc_size: u64,
    /// Whether the size class came from a sized delete (compile-time size)
    /// rather than a page-map lookup.
    pub sized: bool,
    /// The freeing thread is not the thread that allocated the block (the
    /// producer–consumer cross-thread pattern). Remote frees migrate
    /// memory between caches and are priced differently by the multi-core
    /// timing layer.
    pub remote: bool,
    /// Radix nodes visited when `sized` is false.
    pub pagemap_addrs: Option<[Addr; 3]>,
    /// Which path the free took.
    pub path: FreePath,
}

/// Allocator-wide statistics, one counter per interesting event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// malloc calls.
    pub mallocs: u64,
    /// Fast-path (thread cache hit) mallocs.
    pub fast_hits: u64,
    /// Thread-cache misses refilled from the central list.
    pub central_refills: u64,
    /// Refills that had to carve a new span.
    pub populates: u64,
    /// Large allocations.
    pub large_allocs: u64,
    /// Sampled allocations.
    pub sampled: u64,
    /// free calls.
    pub frees: u64,
    /// Fast-path frees.
    pub fast_frees: u64,
    /// Frees that triggered a release to the central list.
    pub list_releases: u64,
    /// Batches stolen from neighbouring thread caches on a refill.
    pub steals: u64,
    /// Refills served from a transfer-cache slot.
    pub transfer_hits: u64,
    /// Released batches parked in a transfer-cache slot.
    pub transfer_inserts: u64,
    /// Frees issued by a thread other than the allocating one.
    pub remote_frees: u64,
    /// Large frees.
    pub large_frees: u64,
    /// Bytes handed out.
    pub bytes_allocated: u64,
    /// Bytes returned.
    pub bytes_freed: u64,
}

#[derive(Debug, Clone, Copy)]
struct LiveAlloc {
    alloc_size: u64,
    cls: Option<ClassId>,
    span: Option<SpanId>,
    /// The thread whose cache served the allocation; a free from any
    /// other thread is a remote free.
    owner: usize,
}

/// Configuration knobs for the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcMallocConfig {
    /// Sampling interval in bytes.
    pub sampling_interval: u64,
    /// Thread-cache size cap before scavenging (2 MiB in the paper).
    pub max_cache_bytes: u64,
}

impl Default for TcMallocConfig {
    fn default() -> Self {
        Self {
            sampling_interval: Sampler::DEFAULT_INTERVAL,
            max_cache_bytes: consts::MAX_THREAD_CACHE_BYTES,
        }
    }
}

/// One thread's private cache: per-class free lists with adaptive length
/// caps, a byte budget and the allocation sampler.
#[derive(Debug, Clone)]
struct ThreadCache {
    /// Free lists, indexed by class id (slot 0 unused).
    lists: Vec<FreeList>,
    /// Adaptive per-class max list length (slow-start like TCMalloc).
    max_len: Vec<usize>,
    cache_bytes: u64,
    sampler: Sampler,
}

impl ThreadCache {
    fn new(size_classes: &SizeClasses, config: &TcMallocConfig) -> Self {
        let n = size_classes.num_classes() + 1;
        let mut lists = Vec::with_capacity(n);
        let mut max_len = Vec::with_capacity(n);
        lists.push(FreeList::new());
        max_len.push(0);
        for (_, info) in size_classes.iter() {
            lists.push(FreeList::new());
            max_len.push(info.num_to_move as usize);
        }
        Self {
            lists,
            max_len,
            cache_bytes: 0,
            sampler: Sampler::new(config.sampling_interval),
        }
    }
}

/// The TCMalloc model. By default it has a single thread cache (the
/// paper's simulations are single-core); [`TcMalloc::with_threads`] builds
/// the full §3.1 structure — one cache per thread over shared central
/// lists, with neighbour stealing and cross-thread memory migration.
///
/// # Example
///
/// ```
/// use mallacc_tcmalloc::{TcMalloc, MallocPath};
///
/// let mut a = TcMalloc::new(Default::default());
/// let first = a.malloc(48);
/// // Cold caches: the first call of a class refills from central.
/// assert!(matches!(first.path, MallocPath::CentralRefill { .. }));
/// let second = a.malloc(48);
/// assert!(matches!(second.path, MallocPath::ThreadCacheHit { .. }));
/// a.free(second.ptr, true);
/// a.free(first.ptr, true);
/// ```
#[derive(Debug, Clone)]
pub struct TcMalloc {
    size_classes: SizeClasses,
    threads: Vec<ThreadCache>,
    /// Per-class batch slots in front of the central lists (slot 0 dummy).
    transfer: Vec<TransferCache>,
    central: Vec<CentralFreeList>,
    heap: PageHeap,
    span_class: HashMap<SpanId, ClassId>,
    live: HashMap<Addr, LiveAlloc>,
    /// Objects carved out of spans so far, per class (slot 0 unused).
    /// Small-class blocks never return to the page heap, so at any point
    /// `carved[c] == live(c) + thread lists + transfer cache + central`.
    carved: Vec<u64>,
    config: TcMallocConfig,
    stats: AllocStats,
}

impl TcMalloc {
    /// Creates a cold single-thread allocator.
    pub fn new(config: TcMallocConfig) -> Self {
        Self::with_threads(config, 1)
    }

    /// Creates a cold allocator with `num_threads` thread caches sharing
    /// the central free lists and the page heap.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads` is zero.
    pub fn with_threads(config: TcMallocConfig, num_threads: usize) -> Self {
        assert!(num_threads > 0, "need at least one thread cache");
        let size_classes = SizeClasses::tcmalloc_2007();
        let n = size_classes.num_classes() + 1;
        let mut central = Vec::with_capacity(n);
        let mut transfer = Vec::with_capacity(n);
        // Slot 0 is a dummy so ClassId indexes directly.
        central.push(CentralFreeList::new(
            ClassId(1),
            size_classes.class_info(ClassId(1)),
        ));
        transfer.push(TransferCache::new(1));
        for (cls, info) in size_classes.iter() {
            central.push(CentralFreeList::new(cls, info));
            transfer.push(TransferCache::new(info.num_to_move as usize));
        }
        let threads = (0..num_threads)
            .map(|_| ThreadCache::new(&size_classes, &config))
            .collect();
        Self {
            size_classes,
            threads,
            transfer,
            central,
            heap: PageHeap::new(),
            span_class: HashMap::new(),
            live: HashMap::new(),
            carved: vec![0; n],
            config,
            stats: AllocStats::default(),
        }
    }

    /// Number of thread caches.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// The size-class table in use.
    pub fn size_classes(&self) -> &SizeClasses {
        &self.size_classes
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> AllocStats {
        self.stats
    }

    /// The page heap (for inspection in tests and figures).
    pub fn page_heap(&self) -> &PageHeap {
        &self.heap
    }

    /// Bytes currently cached in thread 0's cache.
    pub fn thread_cache_bytes(&self) -> u64 {
        self.thread_cache_bytes_on(0)
    }

    /// Bytes currently cached in thread `tid`'s cache.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn thread_cache_bytes_on(&self, tid: usize) -> u64 {
        self.threads[tid].cache_bytes
    }

    /// Current head of a class's free list in thread 0's cache.
    pub fn list_head(&self, cls: ClassId) -> Option<Addr> {
        self.list_head_on(0, cls)
    }

    /// Current head of a class's free list in thread `tid`'s cache.
    pub fn list_head_on(&self, tid: usize, cls: ClassId) -> Option<Addr> {
        self.threads[tid].lists[cls.0 as usize].head()
    }

    /// Second element of a class's free list in thread 0's cache.
    pub fn list_next_after_head(&self, cls: ClassId) -> Option<Addr> {
        self.list_next_after_head_on(0, cls)
    }

    /// Second element of a class's free list in thread `tid`'s cache.
    pub fn list_next_after_head_on(&self, tid: usize, cls: ClassId) -> Option<Addr> {
        self.threads[tid].lists[cls.0 as usize].next_after_head()
    }

    /// Length of a class's free list in thread 0's cache.
    pub fn list_len(&self, cls: ClassId) -> usize {
        self.list_len_on(0, cls)
    }

    /// Length of a class's free list in thread `tid`'s cache.
    pub fn list_len_on(&self, tid: usize, cls: ClassId) -> usize {
        self.threads[tid].lists[cls.0 as usize].len()
    }

    /// Every block on thread `tid`'s free list for `cls`, head first.
    /// Used by the cross-thread invariant tests: a block must never sit
    /// on two thread caches at once.
    pub fn free_list_blocks_on(&self, tid: usize, cls: ClassId) -> Vec<Addr> {
        self.threads[tid].lists[cls.0 as usize].iter().collect()
    }

    /// Objects currently parked in the transfer cache for `cls`.
    pub fn transfer_len(&self, cls: ClassId) -> usize {
        self.transfer[cls.0 as usize].len()
    }

    /// Transfer-cache statistics for `cls`.
    pub fn transfer_stats(&self, cls: ClassId) -> TransferStats {
        self.transfer[cls.0 as usize].stats()
    }

    /// Objects currently in the central free list for `cls`.
    pub fn central_len(&self, cls: ClassId) -> usize {
        self.central[cls.0 as usize].len()
    }

    /// Total objects carved out of spans for `cls` since construction.
    /// Small-class objects never return to the page heap, so this is the
    /// conserved total of the class's block population.
    pub fn carved_objects(&self, cls: ClassId) -> u64 {
        self.carved[cls.0 as usize]
    }

    /// Live (allocated, not yet freed) blocks of class `cls`.
    pub fn live_blocks_of(&self, cls: ClassId) -> usize {
        self.live.values().filter(|l| l.cls == Some(cls)).count()
    }

    /// Free blocks of `cls` across every tier: all thread caches, the
    /// transfer cache and the central list. Together with
    /// [`TcMalloc::live_blocks_of`] this must equal
    /// [`TcMalloc::carved_objects`] at all times.
    pub fn free_blocks_of(&self, cls: ClassId) -> usize {
        let in_threads: usize = (0..self.threads.len())
            .map(|tid| self.list_len_on(tid, cls))
            .sum();
        in_threads + self.transfer_len(cls) + self.central_len(cls)
    }

    /// Number of live (allocated, not yet freed) blocks.
    pub fn live_blocks(&self) -> usize {
        self.live.len()
    }

    /// Allocates `requested` bytes from thread 0's cache.
    pub fn malloc(&mut self, requested: u64) -> MallocOutcome {
        self.malloc_on(0, requested)
    }

    /// Allocates `requested` bytes from thread `tid`'s cache.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn malloc_on(&mut self, tid: usize, requested: u64) -> MallocOutcome {
        self.stats.mallocs += 1;
        if requested > consts::MAX_SIZE {
            return self.malloc_large(tid, requested);
        }
        let cls = self
            .size_classes
            .size_class(requested)
            .expect("small sizes always map to a class");
        let info = self.size_classes.class_info(cls);
        let alloc_size = info.size;
        let idx = class_index(requested).expect("small size has an index");
        let sampled = self.threads[tid].sampler.record_allocation(alloc_size);
        if sampled {
            self.stats.sampled += 1;
        }
        self.stats.bytes_allocated += alloc_size;
        let list_addr = layout::thread_list_header_on(tid, cls);

        let list = &mut self.threads[tid].lists[cls.0 as usize];
        if let Some(p) = list.pop() {
            self.threads[tid].cache_bytes -= alloc_size;
            self.stats.fast_hits += 1;
            self.live.insert(
                p.block,
                LiveAlloc {
                    alloc_size,
                    cls: Some(cls),
                    span: None,
                    owner: tid,
                },
            );
            return MallocOutcome {
                ptr: p.block,
                requested,
                alloc_size,
                cls: Some(cls),
                class_index: Some(idx),
                sampled,
                path: MallocPath::ThreadCacheHit {
                    list: list_addr,
                    next: p.new_head,
                },
            };
        }

        // Miss: refill a batch. A parked transfer-cache batch (from another
        // thread's release) is cheapest; otherwise steal from a flush
        // neighbour cache (§3.1: "it either attempts to 'steal' some memory
        // from neighboring thread caches, or gets it from a central free
        // list") and go through the central list.
        self.stats.central_refills += 1;
        let batch_size = info.num_to_move as usize;
        let (batch, populate, via_transfer, stole_from) =
            if let Some(b) = self.transfer[cls.0 as usize].try_remove(batch_size) {
                self.stats.transfer_hits += 1;
                (b, None, true, None)
            } else {
                let stole_from = if self.central[cls.0 as usize].len() < batch_size {
                    self.try_steal(tid, cls, batch_size, alloc_size)
                } else {
                    None
                };
                let r = self.central[cls.0 as usize].remove_range(batch_size, &mut self.heap);
                if let Some(p) = &r.populate {
                    self.stats.populates += 1;
                    self.span_class.insert(p.span.id, cls);
                    self.carved[cls.0 as usize] += p.object_count;
                }
                (r.batch, r.populate, false, stole_from)
            };
        let t = &mut self.threads[tid];
        let list = &mut t.lists[cls.0 as usize];
        list.push_batch(batch.iter().copied());
        let p = list.pop().expect("refill guarantees at least one object");
        t.cache_bytes += (batch.len() as u64 - 1) * alloc_size;
        self.live.insert(
            p.block,
            LiveAlloc {
                alloc_size,
                cls: Some(cls),
                span: None,
                owner: tid,
            },
        );
        MallocOutcome {
            ptr: p.block,
            requested,
            alloc_size,
            cls: Some(cls),
            class_index: Some(idx),
            sampled,
            path: MallocPath::CentralRefill {
                list: list_addr,
                central: layout::central_list(cls),
                batch,
                populate,
                next: p.new_head,
                via_transfer,
                stole_from,
            },
        }
    }

    /// Moves a batch from the best-stocked *other* thread cache into the
    /// central list, if any neighbour can spare one. Returns the victim.
    fn try_steal(
        &mut self,
        tid: usize,
        cls: ClassId,
        batch: usize,
        alloc_size: u64,
    ) -> Option<usize> {
        let victim = (0..self.threads.len())
            .filter(|&v| v != tid)
            .max_by_key(|&v| self.threads[v].lists[cls.0 as usize].len())?;
        if self.threads[victim].lists[cls.0 as usize].len() < 2 * batch {
            return None;
        }
        let moved = self.threads[victim].lists[cls.0 as usize].pop_batch(batch);
        self.threads[victim].cache_bytes -= moved.len() as u64 * alloc_size;
        self.central[cls.0 as usize].insert_range(moved);
        self.stats.steals += 1;
        Some(victim)
    }

    fn malloc_large(&mut self, tid: usize, requested: u64) -> MallocOutcome {
        let pages = requested.div_ceil(consts::PAGE_SIZE);
        let span = self.heap.allocate(pages);
        let ptr = layout::page_addr(span.start_page);
        let alloc_size = pages * consts::PAGE_SIZE;
        self.stats.large_allocs += 1;
        self.stats.bytes_allocated += alloc_size;
        let sampled = self.threads[tid].sampler.record_allocation(alloc_size);
        if sampled {
            self.stats.sampled += 1;
        }
        self.live.insert(
            ptr,
            LiveAlloc {
                alloc_size,
                cls: None,
                span: Some(span.id),
                owner: tid,
            },
        );
        MallocOutcome {
            ptr,
            requested,
            alloc_size,
            cls: None,
            class_index: None,
            sampled,
            path: MallocPath::Large {
                pages,
                grew_heap: span.grew_heap,
            },
        }
    }

    /// Frees `ptr`. `sized` models C++14 sized deallocation: when true the
    /// size class is computed from the compile-time size; when false the
    /// allocator performs the page-map lookup the paper calls out as
    /// caching poorly.
    ///
    /// # Panics
    ///
    /// Panics on an invalid or double free.
    pub fn free(&mut self, ptr: Addr, sized: bool) -> FreeOutcome {
        self.free_on(0, ptr, sized)
    }

    /// Frees `ptr` from thread `tid` (the freeing thread's cache receives
    /// the block — this is how memory migrates between threads).
    ///
    /// # Panics
    ///
    /// Panics on an invalid or double free, or if `tid` is out of range.
    pub fn free_on(&mut self, tid: usize, ptr: Addr, sized: bool) -> FreeOutcome {
        self.stats.frees += 1;
        let live = self
            .live
            .remove(&ptr)
            .unwrap_or_else(|| panic!("invalid or double free of {ptr:#x}"));
        self.stats.bytes_freed += live.alloc_size;
        let remote = tid != live.owner;
        if remote {
            self.stats.remote_frees += 1;
        }

        let Some(cls) = live.cls else {
            // Large free.
            let span = live.span.expect("large allocations track their span");
            let pages = self.heap.span(span).pages;
            self.heap.free(span);
            self.stats.large_frees += 1;
            return FreeOutcome {
                ptr,
                cls: None,
                alloc_size: live.alloc_size,
                sized,
                remote,
                pagemap_addrs: (!sized)
                    .then(|| layout::pagemap_node_addrs(layout::addr_to_page(ptr))),
                path: FreePath::Large { pages },
            };
        };

        let pagemap_addrs = (!sized).then(|| layout::pagemap_node_addrs(layout::addr_to_page(ptr)));
        let list_addr = layout::thread_list_header_on(tid, cls);
        let t = &mut self.threads[tid];
        let list = &mut t.lists[cls.0 as usize];
        let old_head = list.head();
        list.push(ptr);
        t.cache_bytes += live.alloc_size;
        self.stats.fast_frees += 1;

        // Overflow heuristics: release a batch to the central list when the
        // list outgrows its (slow-start) max length, or when the whole
        // cache exceeds its byte budget.
        let info = self.size_classes.class_info(cls);
        let over_len = list.len() > t.max_len[cls.0 as usize];
        let over_bytes = t.cache_bytes > self.config.max_cache_bytes;
        let (released, released_to_transfer) = if over_len || over_bytes {
            if over_len {
                // Slow-start growth, capped so lists cannot grow unbounded.
                let cap = (8192 / info.size).max(2) as usize * 4;
                let grown = t.max_len[cls.0 as usize] + info.num_to_move as usize;
                t.max_len[cls.0 as usize] = grown.min(cap.max(info.num_to_move as usize));
            }
            let batch = list.pop_batch(info.num_to_move as usize);
            t.cache_bytes -= batch.len() as u64 * info.size;
            self.stats.list_releases += 1;
            // Full batches park in a transfer-cache slot; partial batches
            // and slot overflow spill through the central list's lock.
            let released = batch.clone();
            let to_transfer = match self.transfer[cls.0 as usize].try_insert(batch) {
                Ok(()) => {
                    self.stats.transfer_inserts += 1;
                    true
                }
                Err(spill) => {
                    self.central[cls.0 as usize].insert_range(spill);
                    false
                }
            };
            (Some(released), to_transfer)
        } else {
            (None, false)
        };

        FreeOutcome {
            ptr,
            cls: Some(cls),
            alloc_size: live.alloc_size,
            sized,
            remote,
            pagemap_addrs,
            path: FreePath::ThreadCachePush {
                list: list_addr,
                old_head,
                released,
                released_to_transfer,
            },
        }
    }
}

impl Default for TcMalloc {
    fn default() -> Self {
        Self::new(TcMallocConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc() -> TcMalloc {
        TcMalloc::new(TcMallocConfig::default())
    }

    #[test]
    fn first_malloc_refills_then_hits() {
        let mut a = alloc();
        let o1 = a.malloc(64);
        assert!(matches!(o1.path, MallocPath::CentralRefill { .. }));
        let o2 = a.malloc(64);
        assert!(matches!(o2.path, MallocPath::ThreadCacheHit { .. }));
        assert_eq!(a.stats().fast_hits, 1);
        assert_eq!(a.stats().central_refills, 1);
    }

    #[test]
    fn allocations_do_not_overlap() {
        let mut a = alloc();
        let mut ranges: Vec<(Addr, u64)> = Vec::new();
        for &size in &[8u64, 16, 64, 100, 1024, 9000, 300_000, 64, 8] {
            let o = a.malloc(size);
            for &(p, s) in &ranges {
                let disjoint = o.ptr + o.alloc_size <= p || p + s <= o.ptr;
                assert!(disjoint, "overlap at {:#x}", o.ptr);
            }
            ranges.push((o.ptr, o.alloc_size));
        }
    }

    #[test]
    fn free_then_malloc_recycles_lifo() {
        let mut a = alloc();
        let o1 = a.malloc(48);
        let o2 = a.malloc(48);
        a.free(o2.ptr, true);
        a.free(o1.ptr, true);
        let o3 = a.malloc(48);
        assert_eq!(o3.ptr, o1.ptr, "most recently freed is reused first");
    }

    #[test]
    fn malloc_outcome_reports_next_head() {
        let mut a = alloc();
        let o1 = a.malloc(32);
        let o2 = a.malloc(32);
        a.free(o1.ptr, true);
        a.free(o2.ptr, true);
        let o3 = a.malloc(32);
        match o3.path {
            MallocPath::ThreadCacheHit { next, .. } => assert_eq!(next, Some(o1.ptr)),
            ref p => panic!("expected hit, got {p:?}"),
        }
    }

    #[test]
    fn large_allocation_bypasses_caches() {
        let mut a = alloc();
        let o = a.malloc(1_000_000);
        assert!(matches!(o.path, MallocPath::Large { .. }));
        assert_eq!(o.cls, None);
        let f = a.free(o.ptr, false);
        assert!(matches!(f.path, FreePath::Large { .. }));
        assert_eq!(a.stats().large_frees, 1);
    }

    #[test]
    #[should_panic(expected = "invalid or double free")]
    fn double_free_panics() {
        let mut a = alloc();
        let o = a.malloc(64);
        a.free(o.ptr, true);
        a.free(o.ptr, true);
    }

    #[test]
    fn unsized_free_reports_pagemap_walk() {
        let mut a = alloc();
        let o = a.malloc(64);
        let f = a.free(o.ptr, false);
        assert!(!f.sized);
        let addrs = f.pagemap_addrs.expect("unsized free walks the page map");
        assert_eq!(addrs.len(), 3);
        let g = a.malloc(64);
        let f2 = a.free(g.ptr, true);
        assert!(f2.pagemap_addrs.is_none());
    }

    #[test]
    fn list_overflow_releases_to_central() {
        let mut a = alloc();
        // Allocate many, then free all: the list must overflow its max
        // length at least once and release a batch.
        let ptrs: Vec<Addr> = (0..200).map(|_| a.malloc(64).ptr).collect();
        for p in ptrs {
            a.free(p, true);
        }
        assert!(a.stats().list_releases > 0);
    }

    #[test]
    fn cache_byte_cap_is_enforced_loosely() {
        let mut a = TcMalloc::new(TcMallocConfig {
            max_cache_bytes: 64 * 1024,
            ..Default::default()
        });
        // Free far more than the cap: releases must kick in and keep the
        // cache bounded within one batch of the cap.
        let ptrs: Vec<Addr> = (0..4000).map(|_| a.malloc(1024).ptr).collect();
        for p in ptrs {
            a.free(p, true);
        }
        assert!(
            a.thread_cache_bytes() <= 64 * 1024 + 64 * 1024,
            "cache grew to {}",
            a.thread_cache_bytes()
        );
    }

    #[test]
    fn sampling_counts_allocations() {
        let mut a = TcMalloc::new(TcMallocConfig {
            sampling_interval: 4096,
            ..Default::default()
        });
        for _ in 0..1000 {
            let o = a.malloc(64);
            a.free(o.ptr, true);
        }
        // 1000 × 64 bytes = 64000 bytes → 15 full 4 KiB intervals.
        assert_eq!(a.stats().sampled, 15);
    }

    #[test]
    fn stats_balance() {
        let mut a = alloc();
        let mut ptrs = Vec::new();
        for i in 0..100u64 {
            ptrs.push(a.malloc(8 + (i % 32) * 8).ptr);
        }
        for p in ptrs {
            a.free(p, true);
        }
        let s = a.stats();
        assert_eq!(s.mallocs, 100);
        assert_eq!(s.frees, 100);
        assert_eq!(s.bytes_allocated, s.bytes_freed);
        assert_eq!(a.live_blocks(), 0);
    }

    #[test]
    fn refill_batch_matches_num_to_move() {
        let mut a = alloc();
        let o = a.malloc(64);
        match o.path {
            MallocPath::CentralRefill { ref batch, .. } => {
                let cls = o.cls.unwrap();
                let info = a.size_classes().class_info(cls);
                assert_eq!(batch.len(), info.num_to_move as usize);
            }
            ref p => panic!("expected refill, got {p:?}"),
        }
    }

    #[test]
    fn threads_have_disjoint_caches() {
        let mut a = TcMalloc::with_threads(TcMallocConfig::default(), 2);
        let o0 = a.malloc_on(0, 64);
        let o1 = a.malloc_on(1, 64);
        match (&o0.path, &o1.path) {
            (
                MallocPath::CentralRefill { list: l0, .. },
                MallocPath::CentralRefill { list: l1, .. },
            ) => assert_ne!(l0, l1, "each thread owns its list header"),
            other => panic!("expected two refills, got {other:?}"),
        }
        assert_ne!(o0.ptr, o1.ptr);
    }

    #[test]
    fn producer_consumer_memory_migrates() {
        // Thread 0 allocates, thread 1 frees: blocks land in thread 1's
        // cache, overflow to the central list, and get refilled back to
        // thread 0 — the §3.1 migration loop. Memory must not blow up.
        let mut a = TcMalloc::with_threads(TcMallocConfig::default(), 2);
        let mut queue = std::collections::VecDeque::new();
        for _ in 0..5000 {
            queue.push_back(a.malloc_on(0, 64).ptr);
            if queue.len() > 32 {
                let p = queue.pop_front().unwrap();
                a.free_on(1, p, true);
            }
        }
        while let Some(p) = queue.pop_front() {
            a.free_on(1, p, true);
        }
        assert_eq!(a.live_blocks(), 0);
        let s = a.stats();
        assert!(
            s.list_releases > 0,
            "consumer cache must overflow to central"
        );
        // Bounded footprint: the heap must not grow linearly with the 5000
        // allocations (5000 × 64 B = 320 KiB would be 40+ pages per round
        // without migration).
        let pages = a.page_heap().stats().os_pages;
        assert!(pages <= 256, "memory blow-up: {pages} pages from the OS");
    }

    #[test]
    fn stealing_rescues_an_empty_central_list() {
        let mut a = TcMalloc::with_threads(TcMallocConfig::default(), 2);
        // Thread 1 hoards a long free list (allocate a lot, free it all).
        let ptrs: Vec<Addr> = (0..128).map(|_| a.malloc_on(1, 64).ptr).collect();
        // Drain the central list into thread 0 first so it is empty.
        while a.stats().populates < 2 {
            let _ = a.malloc_on(0, 64);
        }
        for p in ptrs {
            a.free_on(1, p, true);
        }
        let victim_len_before =
            a.list_len(ClassId(a.size_classes().size_class(64).unwrap().as_u8()));
        let _ = victim_len_before;
        let before = a.stats().steals;
        // Force thread 0 to miss repeatedly; at some point central runs
        // dry and a steal from thread 1 must occur.
        let mut grabbed = Vec::new();
        let mut victims = Vec::new();
        for _ in 0..512 {
            let o = a.malloc_on(0, 64);
            if let MallocPath::CentralRefill {
                stole_from: Some(v),
                ..
            } = o.path
            {
                victims.push(v);
            }
            grabbed.push(o.ptr);
        }
        assert!(
            a.stats().steals > before,
            "expected a neighbour steal: {:?}",
            a.stats()
        );
        assert!(
            victims.iter().all(|&v| v == 1),
            "the only possible victim is thread 1: {victims:?}"
        );
        assert_eq!(victims.len() as u64, a.stats().steals - before);
        for p in grabbed {
            a.free_on(0, p, true);
        }
    }

    #[test]
    fn remote_free_is_detected() {
        let mut a = TcMalloc::with_threads(TcMallocConfig::default(), 2);
        let o = a.malloc_on(0, 64);
        let f = a.free_on(1, o.ptr, true);
        assert!(f.remote, "cross-thread free must be remote");
        assert_eq!(a.stats().remote_frees, 1);
        let o2 = a.malloc_on(0, 64);
        let f2 = a.free_on(0, o2.ptr, true);
        assert!(!f2.remote, "same-thread free is local");
        assert_eq!(a.stats().remote_frees, 1);
    }

    #[test]
    fn released_batches_park_in_transfer_cache() {
        let mut a = TcMalloc::with_threads(TcMallocConfig::default(), 2);
        // Overflow thread 1's list until a full batch is released; it must
        // park in a transfer slot rather than the central list.
        let ptrs: Vec<Addr> = (0..200).map(|_| a.malloc_on(0, 64).ptr).collect();
        for p in ptrs {
            a.free_on(1, p, true);
        }
        let s = a.stats();
        assert!(s.transfer_inserts > 0, "no batch parked: {s:?}");
        let cls = a.size_classes().size_class(64).unwrap();
        assert!(a.transfer_len(cls) > 0);
    }

    #[test]
    fn refill_prefers_transfer_cache() {
        let mut a = TcMalloc::with_threads(TcMallocConfig::default(), 2);
        let ptrs: Vec<Addr> = (0..200).map(|_| a.malloc_on(0, 64).ptr).collect();
        for p in ptrs {
            a.free_on(1, p, true);
        }
        assert!(a.stats().transfer_inserts > 0);
        // Allocate on thread 0 until its leftover list drains and it
        // refills; that refill must come from a parked batch.
        let before = a.stats().transfer_hits;
        loop {
            let o = a.malloc_on(0, 64);
            if let MallocPath::CentralRefill { via_transfer, .. } = o.path {
                assert!(via_transfer, "refill should hit the transfer cache");
                break;
            }
        }
        assert_eq!(a.stats().transfer_hits, before + 1);
    }

    #[test]
    fn block_population_is_conserved() {
        let mut a = TcMalloc::with_threads(TcMallocConfig::default(), 3);
        let cls = a.size_classes().size_class(64).unwrap();
        let mut ptrs = Vec::new();
        for i in 0..500u64 {
            ptrs.push(a.malloc_on((i % 3) as usize, 64).ptr);
            if i % 7 == 0 {
                if let Some(p) = ptrs.pop() {
                    a.free_on(((i + 1) % 3) as usize, p, true);
                }
            }
            let carved = a.carved_objects(cls) as usize;
            let accounted = a.live_blocks_of(cls) + a.free_blocks_of(cls);
            assert_eq!(carved, accounted, "leak or duplication at step {i}");
        }
    }

    #[test]
    fn single_thread_api_is_thread_zero() {
        let mut a = TcMalloc::new(TcMallocConfig::default());
        assert_eq!(a.num_threads(), 1);
        let o = a.malloc(64);
        match o.path {
            MallocPath::CentralRefill { list, .. } => {
                assert_eq!(list, layout::thread_list_header(o.cls.unwrap()));
            }
            ref p => panic!("unexpected path {p:?}"),
        }
        a.free(o.ptr, true);
    }

    #[test]
    fn distinct_classes_use_distinct_lists() {
        let mut a = alloc();
        let o8 = a.malloc(8);
        let o64 = a.malloc(64);
        match (&o8.path, &o64.path) {
            (
                MallocPath::CentralRefill { list: l1, .. },
                MallocPath::CentralRefill { list: l2, .. },
            ) => assert_ne!(l1, l2),
            _ => panic!("expected two refills"),
        }
    }
}
