//! The span-based page heap.
//!
//! The lowest allocator pool (§3.1): memory is obtained from the "OS" in
//! large grants, tracked as *spans* (contiguous runs of 8 KiB pages), kept
//! in per-length free lists, split on allocation and coalesced with
//! neighbouring free spans on deallocation, with a page map resolving any
//! page to its owning span (this is the structure `free()` consults when no
//! sized delete is available).

use std::collections::HashMap;

/// Slab index of a span.
pub type SpanId = usize;

/// Lifecycle state of a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanState {
    /// On a page-heap free list.
    Free,
    /// Handed out (to a central free list or a large allocation).
    InUse,
    /// Merged into another span during coalescing; slot is dead.
    Dead,
}

/// A contiguous run of pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First page number.
    pub start_page: u64,
    /// Length in pages.
    pub pages: u64,
    /// Current state.
    pub state: SpanState,
}

/// Result of allocating a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanAlloc {
    /// Slab id of the allocated span.
    pub id: SpanId,
    /// First page.
    pub start_page: u64,
    /// Length in pages.
    pub pages: u64,
    /// Whether satisfying this request required growing the heap with a
    /// fresh OS grant (the most expensive malloc path of Figure 1).
    pub grew_heap: bool,
}

/// Page-heap statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PageHeapStats {
    /// Spans handed out.
    pub span_allocs: u64,
    /// Spans returned.
    pub span_frees: u64,
    /// OS grants requested.
    pub os_grows: u64,
    /// Pages obtained from the OS in total.
    pub os_pages: u64,
    /// Coalescing merges performed.
    pub coalesces: u64,
    /// Span splits performed.
    pub splits: u64,
}

/// Spans shorter than this live in exact per-length free lists; longer ones
/// go to a single "large" list (TCMalloc's `kMaxPages`).
pub const MAX_SMALL_SPAN_PAGES: u64 = 128;

/// Minimum OS grant, in pages (1 MiB of 8 KiB pages).
pub const MIN_OS_GROW_PAGES: u64 = 128;

/// The page heap.
///
/// # Example
///
/// ```
/// use mallacc_tcmalloc::PageHeap;
///
/// let mut heap = PageHeap::new();
/// let a = heap.allocate(2);
/// assert!(a.grew_heap); // first allocation pulls an OS grant
/// let b = heap.allocate(2);
/// assert!(!b.grew_heap); // carved from the grant's remainder
/// heap.free(a.id);
/// heap.free(b.id);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PageHeap {
    spans: Vec<Span>,
    /// Exact-length free lists, index = pages (0 unused).
    free_small: Vec<Vec<SpanId>>,
    free_large: Vec<SpanId>,
    /// page → owning span, maintained for every page of live spans.
    pagemap: HashMap<u64, SpanId>,
    next_page: u64,
    stats: PageHeapStats,
}

impl PageHeap {
    /// Creates an empty heap; the first allocation will grow it.
    pub fn new() -> Self {
        Self {
            spans: Vec::new(),
            free_small: vec![Vec::new(); (MAX_SMALL_SPAN_PAGES + 1) as usize],
            free_large: Vec::new(),
            pagemap: HashMap::new(),
            next_page: 0,
            stats: PageHeapStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> PageHeapStats {
        self.stats
    }

    /// The span slab entry.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn span(&self, id: SpanId) -> Span {
        self.spans[id]
    }

    /// Total pages currently obtained from the OS.
    pub fn heap_pages(&self) -> u64 {
        self.next_page
    }

    /// Resolves a page to its owning span, as `free()` does via the page
    /// map.
    pub fn span_of_page(&self, page: u64) -> Option<SpanId> {
        self.pagemap.get(&page).copied()
    }

    fn register(&mut self, id: SpanId) {
        let span = self.spans[id];
        for p in span.start_page..span.start_page + span.pages {
            self.pagemap.insert(p, id);
        }
    }

    fn push_free(&mut self, id: SpanId) {
        let pages = self.spans[id].pages;
        self.spans[id].state = SpanState::Free;
        if pages <= MAX_SMALL_SPAN_PAGES {
            self.free_small[pages as usize].push(id);
        } else {
            self.free_large.push(id);
        }
    }

    fn take_free(&mut self, id: SpanId) {
        let pages = self.spans[id].pages;
        let list = if pages <= MAX_SMALL_SPAN_PAGES {
            &mut self.free_small[pages as usize]
        } else {
            &mut self.free_large
        };
        let pos = list
            .iter()
            .position(|&x| x == id)
            .expect("free span must be on its free list");
        list.swap_remove(pos);
    }

    fn grow(&mut self, min_pages: u64) -> SpanId {
        let pages = min_pages.max(MIN_OS_GROW_PAGES);
        let id = self.spans.len();
        self.spans.push(Span {
            start_page: self.next_page,
            pages,
            state: SpanState::Free,
        });
        self.next_page += pages;
        self.stats.os_grows += 1;
        self.stats.os_pages += pages;
        self.register(id);
        self.push_free(id);
        id
    }

    /// Splits `pages` off the front of free span `id`, returning the id of
    /// the span that now has exactly `pages` pages.
    fn split(&mut self, id: SpanId, pages: u64) -> SpanId {
        let span = self.spans[id];
        debug_assert!(span.pages > pages);
        self.stats.splits += 1;
        // Shrink the original to the remainder...
        let rest_id = self.spans.len();
        self.spans.push(Span {
            start_page: span.start_page + pages,
            pages: span.pages - pages,
            state: SpanState::Free,
        });
        self.register(rest_id);
        self.push_free(rest_id);
        // ...and retarget the original as the carved head.
        self.spans[id].pages = pages;
        self.register(id);
        id
    }

    /// Allocates a span of exactly `pages` pages, growing the heap if
    /// needed.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is zero.
    pub fn allocate(&mut self, pages: u64) -> SpanAlloc {
        assert!(pages > 0, "cannot allocate an empty span");
        let (found, grew) = match self.find_free(pages) {
            Some(id) => (id, false),
            None => (self.grow(pages), true),
        };
        self.take_free(found);
        let id = if self.spans[found].pages > pages {
            self.split(found, pages)
        } else {
            found
        };
        self.spans[id].state = SpanState::InUse;
        self.stats.span_allocs += 1;
        let s = self.spans[id];
        SpanAlloc {
            id,
            start_page: s.start_page,
            pages: s.pages,
            grew_heap: grew,
        }
    }

    fn find_free(&self, pages: u64) -> Option<SpanId> {
        if pages <= MAX_SMALL_SPAN_PAGES {
            for len in pages..=MAX_SMALL_SPAN_PAGES {
                if let Some(&id) = self.free_small[len as usize].last() {
                    return Some(id);
                }
            }
        }
        // First fit in the large list.
        self.free_large
            .iter()
            .copied()
            .find(|&id| self.spans[id].pages >= pages)
    }

    /// Returns span `id` to the heap, coalescing with free neighbours.
    ///
    /// # Panics
    ///
    /// Panics if the span is not currently in use (double free).
    pub fn free(&mut self, id: SpanId) {
        assert_eq!(
            self.spans[id].state,
            SpanState::InUse,
            "span {id} freed while not in use"
        );
        self.stats.span_frees += 1;
        let mut start = self.spans[id].start_page;
        let mut pages = self.spans[id].pages;

        // Coalesce with the span ending just before us.
        if start > 0 {
            if let Some(prev) = self.span_of_page(start - 1) {
                if self.spans[prev].state == SpanState::Free {
                    self.take_free(prev);
                    start = self.spans[prev].start_page;
                    pages += self.spans[prev].pages;
                    self.spans[prev].state = SpanState::Dead;
                    self.stats.coalesces += 1;
                }
            }
        }
        // Coalesce with the span starting just after us.
        if let Some(next) = self.span_of_page(start + pages) {
            if self.spans[next].state == SpanState::Free {
                self.take_free(next);
                pages += self.spans[next].pages;
                self.spans[next].state = SpanState::Dead;
                self.stats.coalesces += 1;
            }
        }

        self.spans[id].start_page = start;
        self.spans[id].pages = pages;
        self.register(id);
        self.push_free(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout;

    #[test]
    fn first_allocation_grows_heap() {
        let mut h = PageHeap::new();
        let a = h.allocate(1);
        assert!(a.grew_heap);
        assert_eq!(a.pages, 1);
        assert_eq!(h.stats().os_grows, 1);
        assert_eq!(h.heap_pages(), MIN_OS_GROW_PAGES);
    }

    #[test]
    fn subsequent_allocations_carve_grant() {
        let mut h = PageHeap::new();
        let _ = h.allocate(1);
        for _ in 0..10 {
            let a = h.allocate(2);
            assert!(!a.grew_heap);
        }
        assert_eq!(h.stats().os_grows, 1);
    }

    #[test]
    fn spans_do_not_overlap() {
        let mut h = PageHeap::new();
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for pages in [1u64, 3, 7, 2, 128, 130, 5] {
            let a = h.allocate(pages);
            for &(s, p) in &ranges {
                let disjoint = a.start_page + a.pages <= s || s + p <= a.start_page;
                assert!(
                    disjoint,
                    "span overlap: ({s},{p}) vs ({},{})",
                    a.start_page, a.pages
                );
            }
            ranges.push((a.start_page, a.pages));
        }
    }

    #[test]
    fn pagemap_resolves_every_page() {
        let mut h = PageHeap::new();
        let a = h.allocate(5);
        for p in a.start_page..a.start_page + 5 {
            assert_eq!(h.span_of_page(p), Some(a.id));
        }
    }

    #[test]
    fn free_and_reuse() {
        let mut h = PageHeap::new();
        let a = h.allocate(4);
        h.free(a.id);
        let b = h.allocate(4);
        assert!(!b.grew_heap);
    }

    #[test]
    fn coalescing_merges_neighbours() {
        let mut h = PageHeap::new();
        let a = h.allocate(2);
        let b = h.allocate(2);
        // b is right after a. Free both; the second free should coalesce
        // with the first (and with the grant remainder).
        h.free(a.id);
        let before = h.stats().coalesces;
        h.free(b.id);
        assert!(h.stats().coalesces > before);
        // A large allocation should now fit without growing.
        let c = h.allocate(MIN_OS_GROW_PAGES);
        assert!(
            !c.grew_heap,
            "coalesced grant should satisfy full-size span"
        );
    }

    #[test]
    #[should_panic(expected = "freed while not in use")]
    fn double_free_panics() {
        let mut h = PageHeap::new();
        let a = h.allocate(1);
        h.free(a.id);
        h.free(a.id);
    }

    #[test]
    fn large_span_allocation() {
        let mut h = PageHeap::new();
        let a = h.allocate(1000);
        assert_eq!(a.pages, 1000);
        assert!(a.grew_heap);
        h.free(a.id);
        let b = h.allocate(900);
        assert!(!b.grew_heap, "should reuse the freed large span");
    }

    #[test]
    fn page_addresses_are_heap_addresses() {
        let mut h = PageHeap::new();
        let a = h.allocate(1);
        let addr = layout::page_addr(a.start_page);
        assert_eq!(layout::addr_to_page(addr), a.start_page);
    }

    #[test]
    fn exhaustive_alloc_free_cycle_is_stable() {
        let mut h = PageHeap::new();
        for round in 0..50 {
            let ids: Vec<_> = (1..=8u64).map(|p| h.allocate(p).id).collect();
            for id in ids {
                h.free(id);
            }
            // Heap growth must stabilise after the first round.
            if round > 0 {
                assert_eq!(h.stats().os_grows, 1, "round {round} grew again");
            }
        }
    }
}
