//! Central free lists: the shared pool between thread caches and the page
//! heap.
//!
//! When a thread cache misses, it fetches a *batch* of objects
//! (`num_objects_to_move`) from the central free list of the class; when
//! the central list itself is empty it *populates* by allocating a span
//! from the page heap and carving it into objects (§3.1). Both operations
//! require locking in real TCMalloc and are orders of magnitude slower
//! than a thread-cache hit — they form the second and third peaks of the
//! paper's Figure 1.

use mallacc_cache::Addr;

use crate::layout;
use crate::page_heap::{PageHeap, SpanAlloc};
use crate::size_class::{ClassId, ClassInfo};

/// A span freshly carved into objects during a central-list populate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Populate {
    /// The span obtained from the page heap.
    pub span: SpanAlloc,
    /// Address of the first carved object.
    pub first_object: Addr,
    /// Number of objects carved.
    pub object_count: u64,
    /// Size of each object.
    pub object_size: u64,
}

/// Result of a batch fetch from the central list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoveRange {
    /// Objects handed to the thread cache (most-recently-freed first).
    pub batch: Vec<Addr>,
    /// Set when the fetch had to populate from the page heap.
    pub populate: Option<Populate>,
}

/// Central free list statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CentralStats {
    /// Batches handed to thread caches.
    pub removes: u64,
    /// Batches returned by thread caches.
    pub inserts: u64,
    /// Spans carved.
    pub populates: u64,
}

/// The central free list for one size class.
#[derive(Debug, Clone)]
pub struct CentralFreeList {
    cls: ClassId,
    info: ClassInfo,
    objects: Vec<Addr>,
    stats: CentralStats,
}

impl CentralFreeList {
    /// Creates an empty central list for `cls`.
    pub fn new(cls: ClassId, info: ClassInfo) -> Self {
        Self {
            cls,
            info,
            objects: Vec::new(),
            stats: CentralStats::default(),
        }
    }

    /// The class this list serves.
    pub fn class(&self) -> ClassId {
        self.cls
    }

    /// Objects currently available.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if no objects are available.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CentralStats {
        self.stats
    }

    /// Address of this list's lock-protected header structure.
    pub fn header_addr(&self) -> Addr {
        layout::central_list(self.cls)
    }

    /// Fetches up to `n` objects, populating from the page heap if the list
    /// is empty.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn remove_range(&mut self, n: usize, heap: &mut PageHeap) -> RemoveRange {
        assert!(n > 0, "batch size must be positive");
        let populate = if self.objects.len() < n {
            Some(self.populate(heap))
        } else {
            None
        };
        let take = n.min(self.objects.len());
        let batch = self.objects.split_off(self.objects.len() - take);
        self.stats.removes += 1;
        RemoveRange { batch, populate }
    }

    /// Returns a batch of objects from a thread cache.
    pub fn insert_range(&mut self, objects: Vec<Addr>) {
        self.stats.inserts += 1;
        self.objects.extend(objects);
    }

    fn populate(&mut self, heap: &mut PageHeap) -> Populate {
        let span = heap.allocate(self.info.pages);
        let first_object = layout::page_addr(span.start_page);
        let span_bytes = span.pages * crate::size_class::consts::PAGE_SIZE;
        let object_count = span_bytes / self.info.size;
        // Carve in address order; the freshly carved objects sit at the
        // *bottom* so recycled (cache-warm) objects are handed out first.
        let mut carved: Vec<Addr> = (0..object_count)
            .rev()
            .map(|i| first_object + i * self.info.size)
            .collect();
        carved.append(&mut self.objects);
        self.objects = carved;
        self.stats.populates += 1;
        Populate {
            span,
            first_object,
            object_count,
            object_size: self.info.size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::size_class::SizeClasses;

    fn fixture() -> (CentralFreeList, PageHeap) {
        let sc = SizeClasses::tcmalloc_2007();
        let cls = sc.size_class(64).unwrap();
        (
            CentralFreeList::new(cls, sc.class_info(cls)),
            PageHeap::new(),
        )
    }

    #[test]
    fn empty_list_populates() {
        let (mut c, mut heap) = fixture();
        let r = c.remove_range(32, &mut heap);
        assert_eq!(r.batch.len(), 32);
        let p = r.populate.expect("first fetch must populate");
        assert_eq!(p.object_size, 64);
        assert_eq!(p.object_count, 8192 / 64);
        assert!(!c.is_empty(), "leftover carved objects stay central");
    }

    #[test]
    fn second_fetch_reuses_population() {
        let (mut c, mut heap) = fixture();
        let _ = c.remove_range(32, &mut heap);
        let r = c.remove_range(32, &mut heap);
        assert!(r.populate.is_none());
        assert_eq!(r.batch.len(), 32);
    }

    #[test]
    fn carved_objects_are_distinct_and_in_span() {
        let (mut c, mut heap) = fixture();
        let r = c.remove_range(32, &mut heap);
        let p = r.populate.unwrap();
        let span_lo = p.first_object;
        let span_hi = span_lo + p.object_count * p.object_size;
        let mut seen = std::collections::HashSet::new();
        for &o in &r.batch {
            assert!((span_lo..span_hi).contains(&o));
            assert!(seen.insert(o), "duplicate object {o:#x}");
            assert_eq!((o - span_lo) % 64, 0, "object misaligned");
        }
    }

    #[test]
    fn insert_then_remove_is_lifo_batchwise() {
        let (mut c, mut heap) = fixture();
        let _ = c.remove_range(2, &mut heap);
        c.insert_range(vec![0x9990_0000, 0x9990_0040]);
        let r = c.remove_range(2, &mut heap);
        assert!(r.populate.is_none());
        assert_eq!(r.batch, vec![0x9990_0000, 0x9990_0040]);
    }

    #[test]
    fn undersized_population_is_topped_up() {
        // A batch larger than one span's objects triggers populate and
        // returns what is available.
        let sc = SizeClasses::tcmalloc_2007();
        // Largest class: 256 KiB objects, 2 to move, span holds few.
        let cls = sc.largest_class();
        let mut c = CentralFreeList::new(cls, sc.class_info(cls));
        let mut heap = PageHeap::new();
        let r = c.remove_range(2, &mut heap);
        assert!(!r.batch.is_empty());
        assert!(r.populate.is_some());
    }

    #[test]
    fn stats_count_operations() {
        let (mut c, mut heap) = fixture();
        let _ = c.remove_range(4, &mut heap);
        c.insert_range(vec![0xAAA0_0000]);
        let s = c.stats();
        assert_eq!(s.removes, 1);
        assert_eq!(s.inserts, 1);
        assert_eq!(s.populates, 1);
    }
}
