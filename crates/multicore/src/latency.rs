//! Per-call latency collection for tail-latency reporting.
//!
//! The multicore replay returns aggregate cycle totals, but datacenter
//! tail-latency questions ("what does Mallacc do to p999 malloc time under
//! contention?") need the full per-call distribution. [`CallLatencySink`]
//! is a [`TraceSink`] that records every operation window's attributed
//! latency — contention stalls included, because the driver opens the
//! window before charging them — without perturbing timing.

use std::any::Any;

use mallacc::{OpMeta, TraceSink, UopEvent};

/// A [`TraceSink`] that records each malloc/free call's attributed cycles
/// in core program order.
#[derive(Debug, Default)]
pub struct CallLatencySink {
    /// Attributed cycles of every malloc call, in call order.
    pub malloc_cycles: Vec<u64>,
    /// Attributed cycles of every free call, in call order.
    pub free_cycles: Vec<u64>,
}

impl TraceSink for CallLatencySink {
    fn on_retire(&mut self, _event: &UopEvent) {}

    fn on_op_end(&mut self, op: &OpMeta<'_>) {
        let cycles = op.end.saturating_sub(op.start);
        if op.is_malloc {
            self.malloc_cycles.push(cycles);
        } else {
            self.free_cycles.push(cycles);
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Makes one boxed [`CallLatencySink`] per core, ready for
/// [`MulticoreSim::run_with_sinks`](crate::MulticoreSim::run_with_sinks).
pub fn latency_sinks(cores: usize) -> Vec<Box<dyn TraceSink>> {
    (0..cores)
        .map(|_| Box::new(CallLatencySink::default()) as Box<dyn TraceSink>)
        .collect()
}

/// Downcasts the sinks [`MulticoreSim::run_with_sinks`](crate::MulticoreSim::run_with_sinks)
/// returns back into per-core latency records (in core order).
///
/// # Panics
///
/// Panics if a sink is not a [`CallLatencySink`].
pub fn take_latencies(sinks: Vec<Box<dyn TraceSink>>) -> Vec<CallLatencySink> {
    sinks
        .into_iter()
        .map(|s| {
            *s.into_any()
                .downcast::<CallLatencySink>()
                .expect("latency sink")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MulticoreSim;
    use mallacc::Mode;
    use mallacc_workloads::MtTrace;

    #[test]
    fn sink_sees_every_call_and_conserves_totals() {
        let t = MtTrace::producer_consumer(2, 100, 3);
        let sim = MulticoreSim::new(Mode::mallacc_default(), 2);
        let (r, sinks) = sim.run_with_sinks(&t, latency_sinks(2));
        let lats = take_latencies(sinks);
        assert_eq!(lats.len(), 2);
        for (core, (rep, lat)) in r.per_core.iter().zip(&lats).enumerate() {
            assert_eq!(
                lat.malloc_cycles.len() as u64,
                rep.totals.malloc_calls,
                "core {core} malloc count"
            );
            assert_eq!(
                lat.free_cycles.len() as u64,
                rep.totals.free_calls,
                "core {core} free count"
            );
            let sum: u64 = lat.malloc_cycles.iter().sum();
            assert_eq!(sum, rep.totals.malloc_cycles, "core {core} malloc cycles");
            let sum: u64 = lat.free_cycles.iter().sum();
            assert_eq!(sum, rep.totals.free_cycles, "core {core} free cycles");
        }
    }

    #[test]
    fn collection_does_not_perturb_timing() {
        let t = MtTrace::producer_consumer(2, 80, 5);
        let sim = MulticoreSim::new(Mode::Baseline, 2);
        let plain = sim.run(&t);
        let (observed, _) = sim.run_with_sinks(&t, latency_sinks(2));
        for (p, o) in plain.per_core.iter().zip(&observed.per_core) {
            assert_eq!(p.totals, o.totals);
        }
    }
}
