//! Multi-core Mallacc simulation: per-core malloc caches, private L1/L2,
//! and cross-thread allocation traffic over an epoch-synchronised shared
//! L3.
//!
//! The paper evaluates Mallacc on a single core, but the accelerator's
//! design is inherently per-core (§4.1: the malloc cache holds *copies* of
//! the core's own thread-cache free list, so it needs no coherence
//! traffic). This crate scales the reproduction to N cores and asks the
//! natural follow-up questions: do malloc-cache hit rates survive
//! cross-thread allocation traffic, and does the speedup hold when cores
//! contend on TCMalloc's shared structures?
//!
//! Simulation is split into two deterministic phases:
//!
//! * **Phase A — serial functional capture** ([`capture`]): the globally
//!   interleaved [`MtTrace`](mallacc_workloads::MtTrace) runs on one shared
//!   [`TcMalloc`](mallacc_tcmalloc::TcMalloc) with a thread cache per core,
//!   producing per-core [`CoreEvent`] streams annotated with post-call list
//!   state and deterministic contention stalls. Cross-core effects that
//!   change *function* — remote frees, transfer-cache hand-offs, neighbour
//!   steals — are resolved here, in trace order.
//! * **Phase B — parallel timing replay** ([`MulticoreSim::run`]): each
//!   core replays its stream on a private out-of-order engine, L1/L2 and
//!   malloc cache, running on its own host thread. The cores share one L3
//!   through the snapshot/commit epoch protocol of
//!   [`SharedL3`](mallacc_cache::SharedL3), so cross-core cache pressure is
//!   modelled (with one epoch of lag) while the results stay bit-identical
//!   across host schedules.
//!
//! # Example
//!
//! ```
//! use mallacc::Mode;
//! use mallacc_multicore::MulticoreSim;
//! use mallacc_workloads::MtTrace;
//!
//! // A 2-core producer–consumer ring: core 0 allocates, core 1 frees.
//! let trace = MtTrace::producer_consumer(2, 100, 1);
//! let base = MulticoreSim::new(Mode::Baseline, 2).run(&trace);
//! let accel = MulticoreSim::new(Mode::mallacc_default(), 2).run(&trace);
//! assert!(accel.cycles_per_call() < base.cycles_per_call());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capture;
mod latency;
mod sim;

pub use capture::{capture, capture_stream, Capture, CoreEvent};
pub use latency::{latency_sinks, take_latencies, CallLatencySink};
pub use sim::{CoreReport, MtRunResult, MulticoreSim, DEFAULT_EPOCH_EVENTS};
