//! Phase B: epoch-parallel per-core timing replay over a shared L3.
//!
//! Each simulated core owns a full single-core timing stack — out-of-order
//! engine, private L1/L2, private malloc cache — and replays its captured
//! event stream. The cores share one L3 through the epoch protocol of
//! [`SharedL3`]:
//!
//! 1. *(serial)* every core installs a snapshot of the L3 master;
//! 2. *(parallel, `std::thread::scope`)* every core replays up to
//!    `epoch_events` events against its private replica, logging the
//!    accesses that reached the L3 level;
//! 3. *(serial, fixed core order)* the logs are committed to the master.
//!
//! Cross-core L3 interference is therefore visible with one epoch of
//! delay — the standard lax-synchronisation trade of parallel
//! architectural simulators — while the simulation stays bit-identical
//! across host thread schedules: nothing a core computes during an epoch
//! depends on any other core's progress through it.

use mallacc::{CallRecord, MallocCacheStats, MallocSim, Mode, SimMode, SimTotals, TraceSink};
use mallacc_cache::{Addr, CacheStats, SharedL3};
use mallacc_tcmalloc::TcMallocConfig;
use mallacc_workloads::{MtOp, MtTrace};

use crate::capture::{capture_stream, CoreEvent};

/// Default events each core replays between L3 synchronisation barriers.
pub const DEFAULT_EPOCH_EVENTS: usize = 256;

/// Base of a core's private application working set. Keeping per-core app
/// traffic in disjoint ranges means cores fight for L3 *capacity* (the real
/// effect) without false sharing of simulated lines.
fn app_base(core: usize) -> Addr {
    0x7000_0000 + core as u64 * 0x1000_0000
}

/// The N-core simulator: functional capture plus epoch-parallel replay.
///
/// # Example
///
/// ```
/// use mallacc::Mode;
/// use mallacc_multicore::MulticoreSim;
/// use mallacc_workloads::MtTrace;
///
/// let trace = MtTrace::producer_consumer(2, 60, 42);
/// let r = MulticoreSim::new(Mode::mallacc_default(), 2).run(&trace);
/// assert_eq!(r.per_core.len(), 2);
/// assert!(r.aggregate().allocator_cycles() > 0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MulticoreSim {
    mode: Mode,
    cores: usize,
    epoch_events: usize,
    alloc_config: TcMallocConfig,
    sim: SimMode,
}

/// One core's share of a run.
#[derive(Debug, Clone, Copy)]
pub struct CoreReport {
    /// Cycle totals of this core's replay.
    pub totals: SimTotals,
    /// The core's private malloc-cache counters.
    pub mc: MallocCacheStats,
    /// The core's view of the (shared) L3: its replica's hit/miss counts.
    pub l3: CacheStats,
}

/// Result of one multi-core run.
#[derive(Debug, Clone)]
pub struct MtRunResult {
    /// The mode the timing was replayed under.
    pub mode: Mode,
    /// Per-core reports, indexed by core.
    pub per_core: Vec<CoreReport>,
    /// The shared functional allocator's statistics (phase A).
    pub alloc: mallacc_tcmalloc::AllocStats,
    /// The shared L3 master's statistics (accesses as committed).
    pub shared_l3: CacheStats,
    /// L3-level accesses merged into the master.
    pub shared_l3_accesses: u64,
    /// Synchronisation epochs the replay took.
    pub epochs: u64,
    /// Steal-induced malloc-cache invalidations replayed.
    pub steal_invalidates: u64,
}

impl MtRunResult {
    /// Sum of every core's totals.
    pub fn aggregate(&self) -> SimTotals {
        let mut t = SimTotals::default();
        for c in &self.per_core {
            t.malloc_calls += c.totals.malloc_calls;
            t.malloc_cycles += c.totals.malloc_cycles;
            t.free_calls += c.totals.free_calls;
            t.free_cycles += c.totals.free_cycles;
            t.app_cycles += c.totals.app_cycles;
        }
        t
    }

    /// Mean cycles per allocator call (malloc and free) across all cores.
    pub fn cycles_per_call(&self) -> f64 {
        let t = self.aggregate();
        let calls = t.malloc_calls + t.free_calls;
        if calls == 0 {
            0.0
        } else {
            t.allocator_cycles() as f64 / calls as f64
        }
    }

    /// The slowest core's program time — the wall clock of the simulated
    /// parallel region.
    pub fn makespan_cycles(&self) -> u64 {
        self.per_core
            .iter()
            .map(|c| c.totals.program_cycles())
            .max()
            .unwrap_or(0)
    }
}

/// One core's replay state (engine + stream cursor + app-touch cursor).
struct CoreReplay {
    sim: MallocSim,
    stream: Vec<CoreEvent>,
    pos: usize,
    touch_cursor: u64,
    app_base: Addr,
}

impl CoreReplay {
    fn done(&self) -> bool {
        self.pos >= self.stream.len()
    }

    /// Replays up to `budget` events; returns when the budget or the
    /// stream runs out.
    fn run_epoch(&mut self, budget: usize) {
        let end = (self.pos + budget).min(self.stream.len());
        while self.pos < end {
            match &self.stream[self.pos] {
                CoreEvent::Malloc {
                    outcome,
                    post,
                    contention,
                } => {
                    let _: CallRecord = self.sim.time_malloc(outcome, *post, *contention);
                }
                CoreEvent::Free {
                    outcome,
                    post,
                    contention,
                } => {
                    let _: CallRecord = self.sim.time_free(outcome, *post, *contention);
                }
                CoreEvent::AppRun { cycles } => self.sim.app_run(*cycles),
                CoreEvent::AppTouch {
                    lines,
                    working_set_lines,
                } => {
                    let ws = u64::from(*working_set_lines).max(1);
                    let addrs: Vec<Addr> = (0..u64::from(*lines))
                        .map(|i| self.app_base + ((self.touch_cursor + i) % ws) * 64)
                        .collect();
                    self.touch_cursor = (self.touch_cursor + u64::from(*lines)) % ws;
                    self.sim.app_touch(&addrs);
                }
                CoreEvent::McInvalidate { cls } => self.sim.invalidate_mc_list(*cls),
            }
            self.pos += 1;
        }
    }
}

impl MulticoreSim {
    /// A `cores`-core simulator in `mode` with default epoch length and
    /// allocator configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(mode: Mode, cores: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        Self {
            mode,
            cores,
            epoch_events: DEFAULT_EPOCH_EVENTS,
            alloc_config: TcMallocConfig::default(),
            sim: SimMode::Full,
        }
    }

    /// Overrides the events-per-core-per-epoch synchronisation grain.
    ///
    /// # Panics
    ///
    /// Panics if `events` is zero.
    pub fn with_epoch_events(mut self, events: usize) -> Self {
        assert!(events > 0, "epoch must make progress");
        self.epoch_events = events;
        self
    }

    /// Overrides the functional allocator's configuration.
    pub fn with_alloc_config(mut self, config: TcMallocConfig) -> Self {
        self.alloc_config = config;
        self
    }

    /// Selects full detailed or sampled execution for every core's
    /// timing replay. Sampling is a pure timing-fidelity axis: the
    /// functional allocator, epoch interleaving and L3 sharing are
    /// unchanged, each core merely extrapolates its cycle totals from
    /// the plan's measured windows.
    pub fn with_sim(mut self, sim: SimMode) -> Self {
        self.sim = sim;
        self
    }

    /// Number of simulated cores.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// The timing mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Runs `trace` through both phases and reports per-core and aggregate
    /// results. Deterministic: the same trace and configuration produce the
    /// same report regardless of host scheduling.
    ///
    /// # Panics
    ///
    /// Panics if the trace was generated for a different core count.
    pub fn run(&self, trace: &MtTrace) -> MtRunResult {
        self.run_with_sinks(trace, Vec::new()).0
    }

    /// Like [`MulticoreSim::run`], but attaches one [`TraceSink`] per core
    /// before the replay and returns them (in core order) alongside the
    /// result. Sinks observe every retired µop, skip, and operation window
    /// of their core; attribution is per-core-deterministic because each
    /// engine only ever runs on its own captured stream.
    ///
    /// An empty `sinks` vector attaches nothing (this is what
    /// [`MulticoreSim::run`] does); otherwise its length must equal the
    /// core count.
    ///
    /// # Panics
    ///
    /// Panics if the trace was generated for a different core count, or if
    /// `sinks` is non-empty with a length other than `cores`.
    pub fn run_with_sinks(
        &self,
        trace: &MtTrace,
        sinks: Vec<Box<dyn TraceSink>>,
    ) -> (MtRunResult, Vec<Box<dyn TraceSink>>) {
        assert_eq!(
            trace.cores(),
            self.cores,
            "trace core count must match the simulator"
        );
        self.run_stream_with_sinks(trace.ops().iter().copied(), sinks)
    }

    /// Streaming variant of [`MulticoreSim::run`]: captures from any
    /// `(core, op)` iterator via [`capture_stream`], so the trace never
    /// has to be materialised (the fleet engine's entry point).
    pub fn run_stream(&self, ops: impl IntoIterator<Item = (usize, MtOp)>) -> MtRunResult {
        self.run_stream_with_sinks(ops, Vec::new()).0
    }

    /// Streaming variant of [`MulticoreSim::run_with_sinks`].
    ///
    /// # Panics
    ///
    /// Panics if an op names a core out of range, or if `sinks` is
    /// non-empty with a length other than `cores`.
    pub fn run_stream_with_sinks(
        &self,
        ops: impl IntoIterator<Item = (usize, MtOp)>,
        sinks: Vec<Box<dyn TraceSink>>,
    ) -> (MtRunResult, Vec<Box<dyn TraceSink>>) {
        assert!(
            sinks.is_empty() || sinks.len() == self.cores,
            "need one sink per core (or none)"
        );
        let cap = capture_stream(self.cores, ops, self.alloc_config);

        let mut sink_slots: Vec<Option<Box<dyn TraceSink>>> = if sinks.is_empty() {
            (0..self.cores).map(|_| None).collect()
        } else {
            sinks.into_iter().map(Some).collect()
        };
        let mut replays: Vec<CoreReplay> = cap
            .streams
            .into_iter()
            .enumerate()
            .map(|(core, stream)| {
                let mut sim = MallocSim::new(self.mode);
                sim.set_sampling(self.sim.plan());
                sim.memory_mut().set_l3_logging(true);
                if let Some(sink) = sink_slots[core].take() {
                    sim.attach_tracer(sink);
                }
                CoreReplay {
                    sim,
                    stream,
                    pos: 0,
                    touch_cursor: 0,
                    app_base: app_base(core),
                }
            })
            .collect();

        let l3_config = replays[0].sim.memory().config().l3;
        let mut shared = SharedL3::new(l3_config);
        let mut epochs = 0u64;

        while replays.iter().any(|r| !r.done()) {
            // (1) Refresh every replica from the master, serially.
            for r in replays.iter_mut() {
                r.sim.memory_mut().install_l3(shared.snapshot());
            }
            // (2) Replay one epoch per core, in parallel. Each core only
            // touches its own state, so scheduling cannot change results.
            let budget = self.epoch_events;
            std::thread::scope(|s| {
                for r in replays.iter_mut() {
                    s.spawn(move || r.run_epoch(budget));
                }
            });
            // (3) Merge the epoch's L3 traffic in fixed core order.
            for r in replays.iter_mut() {
                let log = r.sim.memory_mut().take_l3_log();
                shared.commit(&log);
            }
            epochs += 1;
        }

        let per_core = replays
            .iter()
            .map(|r| CoreReport {
                totals: r.sim.totals(),
                mc: r.sim.malloc_cache().stats(),
                l3: r.sim.memory().stats().2,
            })
            .collect();
        let sinks_out: Vec<Box<dyn TraceSink>> = replays
            .iter_mut()
            .filter_map(|r| r.sim.detach_tracer())
            .collect();

        (
            MtRunResult {
                mode: self.mode,
                per_core,
                alloc: cap.alloc_stats,
                shared_l3: shared.stats(),
                shared_l3_accesses: shared.committed_accesses(),
                epochs,
                steal_invalidates: cap.steal_invalidates,
            },
            sinks_out,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycles_per_call(mode: Mode, trace: &MtTrace) -> f64 {
        MulticoreSim::new(mode, trace.cores())
            .run(trace)
            .cycles_per_call()
    }

    #[test]
    fn run_is_deterministic() {
        let t = MtTrace::producer_consumer(4, 60, 9);
        let a = MulticoreSim::new(Mode::mallacc_default(), 4).run(&t);
        let b = MulticoreSim::new(Mode::mallacc_default(), 4).run(&t);
        assert_eq!(a.epochs, b.epochs);
        assert_eq!(a.shared_l3_accesses, b.shared_l3_accesses);
        for (x, y) in a.per_core.iter().zip(&b.per_core) {
            assert_eq!(x.totals, y.totals);
            assert_eq!(x.mc, y.mc);
        }
    }

    #[test]
    fn per_core_call_counts_match_the_trace() {
        let t = MtTrace::producer_consumer(3, 80, 2);
        let r = MulticoreSim::new(Mode::Baseline, 3).run(&t);
        for (core, c) in r.per_core.iter().enumerate() {
            assert_eq!(
                c.totals.malloc_calls as usize,
                t.malloc_count_on(core),
                "core {core} replayed the wrong number of mallocs"
            );
        }
        let agg = r.aggregate();
        assert_eq!(agg.malloc_calls, agg.free_calls, "trace frees everything");
    }

    #[test]
    fn mallacc_beats_baseline_on_the_ring() {
        let t = MtTrace::producer_consumer(2, 400, 7);
        let base = cycles_per_call(Mode::Baseline, &t);
        let accel = cycles_per_call(Mode::mallacc_default(), &t);
        let limit = cycles_per_call(Mode::limit_all(), &t);
        assert!(accel < base, "mallacc {accel:.1} !< baseline {base:.1}");
        assert!(
            limit <= accel + 1.0,
            "limit {limit:.1} must bound mallacc {accel:.1}"
        );
    }

    #[test]
    fn offload_mode_runs_multicore_and_is_deterministic() {
        let t = MtTrace::producer_consumer(2, 200, 7);
        let a = MulticoreSim::new(Mode::offload_default(), 2).run(&t);
        let b = MulticoreSim::new(Mode::offload_default(), 2).run(&t);
        assert_eq!(a.epochs, b.epochs);
        for (x, y) in a.per_core.iter().zip(&b.per_core) {
            assert_eq!(x.totals, y.totals);
        }
        // The functional phase is mode-independent: call counts match the
        // baseline run exactly.
        let base = MulticoreSim::new(Mode::Baseline, 2).run(&t);
        let (oa, ba) = (a.aggregate(), base.aggregate());
        assert_eq!(oa.malloc_calls, ba.malloc_calls);
        assert_eq!(oa.free_calls, ba.free_calls);
    }

    #[test]
    fn sinks_observe_without_perturbing_timing() {
        use mallacc::{OpMeta, TraceSink, UopEvent};

        #[derive(Debug, Default)]
        struct CountSink {
            retired: u64,
            ops: u64,
            attributed: u64,
        }
        impl TraceSink for CountSink {
            fn on_retire(&mut self, event: &UopEvent) {
                self.retired += 1;
                self.attributed += event.stall.total();
            }
            fn on_skip(&mut self, from: u64, to: u64) {
                self.attributed += to - from;
            }
            fn on_op_end(&mut self, _op: &OpMeta<'_>) {
                self.ops += 1;
            }
            fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
                self
            }
        }

        let t = MtTrace::producer_consumer(2, 120, 13);
        let sim = MulticoreSim::new(Mode::mallacc_default(), 2);
        let plain = sim.run(&t);
        let sinks: Vec<Box<dyn TraceSink>> = (0..2)
            .map(|_| Box::new(CountSink::default()) as Box<dyn TraceSink>)
            .collect();
        let (traced, sinks) = sim.run_with_sinks(&t, sinks);
        assert_eq!(sinks.len(), 2);
        for ((p, q), sink) in plain.per_core.iter().zip(&traced.per_core).zip(sinks) {
            assert_eq!(p.totals, q.totals, "sinks must not change timing");
            let c = sink
                .into_any()
                .downcast::<CountSink>()
                .expect("same sink back");
            assert!(c.retired > 0, "sink saw retirements");
            assert_eq!(
                c.ops,
                q.totals.malloc_calls + q.totals.free_calls,
                "every call produced an op window"
            );
            assert_eq!(
                c.attributed,
                q.totals.program_cycles(),
                "stall attribution conserves the core's program time"
            );
        }
    }

    #[test]
    fn epochs_scale_with_trace_length() {
        let t = MtTrace::producer_consumer(2, 200, 3);
        let r = MulticoreSim::new(Mode::Baseline, 2)
            .with_epoch_events(64)
            .run(&t);
        assert!(r.epochs > 1, "long trace must cross epoch boundaries");
        assert!(r.shared_l3_accesses > 0, "allocator traffic reaches L3");
    }

    #[test]
    fn steal_heavy_trace_replays_cleanly_with_invalidates() {
        use mallacc_workloads::MtOp::*;
        let mut ops = Vec::new();
        for n in 0..256u64 {
            ops.push((1usize, Malloc { size: 64, token: n }));
        }
        for n in 0..256u64 {
            ops.push((
                1usize,
                Free {
                    token: n,
                    sized: true,
                },
            ));
        }
        for n in 0..768u64 {
            ops.push((
                0usize,
                Malloc {
                    size: 64,
                    token: (1 << 32) | n,
                },
            ));
        }
        // Core 1 resumes allocating after the steal: its malloc cache must
        // not serve the stolen (stale) head — the driver debug_asserts it.
        for n in 256..320u64 {
            ops.push((1usize, Malloc { size: 64, token: n }));
        }
        let t = MtTrace::from_ops(2, ops);
        let r = MulticoreSim::new(Mode::mallacc_default(), 2).run(&t);
        assert!(r.alloc.steals > 0, "trace must force a steal");
        assert_eq!(r.steal_invalidates, r.alloc.steals);
        assert!(
            r.per_core[1].mc.list_invalidations > 0,
            "victim core must drop its cached list"
        );
    }

    #[test]
    fn remote_free_contention_costs_cycles() {
        // Same total calls, local (1-core self-free ring) vs remote
        // (2-core ring): the remote variant must pay more per call.
        let local = MtTrace::producer_consumer(1, 400, 5);
        let remote = MtTrace::producer_consumer(2, 200, 5);
        let l = cycles_per_call(Mode::Baseline, &local);
        let r = cycles_per_call(Mode::Baseline, &remote);
        assert!(
            r > l,
            "remote frees must cost more: local {l:.1}, remote {r:.1}"
        );
    }

    #[test]
    fn scaled_macro_runs_on_four_cores() {
        let w = mallacc_workloads::MacroWorkload::by_name("471.omnetpp").unwrap();
        let t = MtTrace::scaled(&w, 4, 60, 11);
        let r = MulticoreSim::new(Mode::mallacc_default(), 4).run(&t);
        for (core, c) in r.per_core.iter().enumerate() {
            assert!(c.totals.malloc_calls > 0, "core {core} idle");
            assert!(
                c.mc.lookup_hits + c.mc.lookup_misses > 0,
                "core {core} never consulted its malloc cache"
            );
        }
        assert!(r.aggregate().app_cycles > 0);
    }
}
