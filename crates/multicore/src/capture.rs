//! Phase A: the serial functional pass.
//!
//! The globally interleaved [`MtTrace`] is executed, in trace order, on one
//! shared [`TcMalloc`] with a thread cache per core. Every allocator call is
//! captured as a per-core [`CoreEvent`] holding everything the timing layer
//! needs to replay it later without touching the allocator again:
//!
//! * the functional [`MallocOutcome`]/[`FreeOutcome`];
//! * the serving list's post-call `(head, next)` ([`PostList`]) — the
//!   values software republishes and the malloc-cache sync/prefetch paths
//!   consume;
//! * a deterministic *contention stall* priced from the trace-order
//!   neighbourhood (see [`ContentionModel`]).
//!
//! Separating function from timing this way is exact for everything except
//! lock/coherence wait times, which real multi-threaded allocators resolve
//! non-deterministically anyway — the contention model replaces them with a
//! reproducible estimate, which is what keeps the whole simulation
//! bit-stable across host thread schedules.

use std::collections::{HashMap, VecDeque};

use mallacc::PostList;
use mallacc_cache::Addr;
use mallacc_tcmalloc::{
    AllocStats, ClassId, FreeOutcome, FreePath, MallocOutcome, MallocPath, TcMalloc, TcMallocConfig,
};
use mallacc_workloads::{MtOp, MtTrace};

/// One event of a core's private replay stream.
#[derive(Debug, Clone)]
pub enum CoreEvent {
    /// Replay the timing of a captured malloc.
    Malloc {
        /// The functional result of the call.
        outcome: MallocOutcome,
        /// Serving list state right after the call.
        post: PostList,
        /// Up-front stall from contention on shared allocator structures.
        contention: u64,
    },
    /// Replay the timing of a captured free.
    Free {
        /// The functional result of the call.
        outcome: FreeOutcome,
        /// Serving list state right after the call.
        post: PostList,
        /// Up-front stall (lock contention and/or the remote-free line pull).
        contention: u64,
    },
    /// Application compute: skip cycles.
    AppRun {
        /// Cycles of non-allocator work.
        cycles: u64,
    },
    /// Application loads over the core's private working set.
    AppTouch {
        /// Lines to load.
        lines: u16,
        /// Working-set size in lines.
        working_set_lines: u32,
    },
    /// A neighbour-cache steal popped blocks off this core's free list for
    /// `cls` from another core. The victim's malloc-cache copy of the list
    /// head is stale and must be dropped before the next accelerated pop.
    McInvalidate {
        /// The class whose cached list must be dropped.
        cls: ClassId,
    },
}

/// Which shared allocator structure an operation serialises on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SharedRes {
    /// The central free list's lock (refill from spans, or a spilled
    /// release).
    Central,
    /// A transfer-cache slot (lock-free CAS in real TCMalloc — much
    /// cheaper, but still a shared cache line).
    Transfer,
}

/// Cycles a central-lock operation stalls per recent contender (§3.1's
/// "central free lists, one per size class, protected by locks").
const CENTRAL_LOCK_CYCLES: u64 = 40;
/// Cycles a transfer-cache operation stalls per recent contender (a CAS on
/// a shared line, not a lock hand-off).
const TRANSFER_SLOT_CYCLES: u64 = 12;
/// Flat cost of a remote free: the freed block's cache line (its embedded
/// `next` pointer is written) must be pulled from the allocating core.
const REMOTE_FREE_CYCLES: u64 = 30;
/// Sliding window of recent shared-structure operations that count as
/// concurrent. Trace order stands in for time: two operations within the
/// window are "simultaneous enough" to collide.
const WINDOW: usize = 64;
/// Stall ceiling — even a pathological window cannot stall a call forever.
const MAX_STALL: u64 = 400;

/// Deterministic contention pricing over the global trace order.
///
/// Real lock wait times depend on the host scheduler; this model replaces
/// them with a reproducible estimate: an operation on a shared structure
/// stalls in proportion to how many *other cores* touched the same
/// structure within the last [`WINDOW`] shared-structure operations.
#[derive(Debug, Default)]
struct ContentionModel {
    window: VecDeque<(usize, SharedRes)>,
}

impl ContentionModel {
    fn charge(&mut self, core: usize, res: Option<SharedRes>, remote: bool) -> u64 {
        let mut stall = if remote { REMOTE_FREE_CYCLES } else { 0 };
        if let Some(r) = res {
            let contenders = self
                .window
                .iter()
                .filter(|&&(c, w)| c != core && w == r)
                .count() as u64;
            stall += contenders
                * match r {
                    SharedRes::Central => CENTRAL_LOCK_CYCLES,
                    SharedRes::Transfer => TRANSFER_SLOT_CYCLES,
                };
            self.window.push_back((core, r));
            if self.window.len() > WINDOW {
                self.window.pop_front();
            }
        }
        stall.min(MAX_STALL)
    }
}

/// Everything phase A hands to phase B.
#[derive(Debug)]
pub struct Capture {
    /// Per-core event streams, in each core's program order.
    pub streams: Vec<Vec<CoreEvent>>,
    /// The shared allocator's statistics over the whole trace.
    pub alloc_stats: AllocStats,
    /// Steal-induced malloc-cache invalidations inserted into victim
    /// streams.
    pub steal_invalidates: u64,
}

fn post_list(alloc: &TcMalloc, core: usize, cls: Option<ClassId>) -> PostList {
    match cls {
        Some(c) => PostList {
            head: alloc.list_head_on(core, c),
            next: alloc.list_next_after_head_on(core, c),
        },
        None => PostList::default(),
    }
}

/// Runs the trace on a shared `cores`-thread allocator and captures the
/// per-core replay streams.
///
/// # Panics
///
/// Panics if the trace frees a token it never allocated (malformed trace).
pub fn capture(trace: &MtTrace, config: TcMallocConfig) -> Capture {
    capture_stream(trace.cores(), trace.ops().iter().copied(), config)
}

/// Streaming variant of [`capture`]: consumes `(core, op)` pairs from any
/// iterator — a generator, a [`MtOpReader`](mallacc_workloads::MtOpReader)
/// over a trace file — so the full op sequence never has to exist in
/// memory. The fleet scenario engine feeds million-request service
/// streams through this entry point.
///
/// # Panics
///
/// Panics if an op names a core `>= cores`, frees a token it never
/// allocated, or allocates a token twice (malformed stream).
pub fn capture_stream(
    cores: usize,
    ops: impl IntoIterator<Item = (usize, MtOp)>,
    config: TcMallocConfig,
) -> Capture {
    assert!(cores > 0, "need at least one core");
    let mut alloc = TcMalloc::with_threads(config, cores);
    let mut streams: Vec<Vec<CoreEvent>> = vec![Vec::new(); cores];
    let mut blocks: HashMap<u64, Addr> = HashMap::new();
    let mut contention = ContentionModel::default();
    let mut steal_invalidates = 0u64;

    for (core, op) in ops {
        assert!(core < cores, "op names core {core} >= {cores}");
        match op {
            MtOp::Malloc { size, token } => {
                let outcome = alloc.malloc_on(core, size);
                let post = post_list(&alloc, core, outcome.cls);
                let prev = blocks.insert(token, outcome.ptr);
                assert!(prev.is_none(), "token {token:#x} allocated twice");
                let res = match &outcome.path {
                    MallocPath::CentralRefill {
                        via_transfer: true, ..
                    } => Some(SharedRes::Transfer),
                    MallocPath::CentralRefill { .. } => Some(SharedRes::Central),
                    _ => None,
                };
                if let MallocPath::CentralRefill {
                    stole_from: Some(victim),
                    ..
                } = outcome.path
                {
                    // The steal happened *now* in global order: the
                    // invalidate lands between the victim's past and future
                    // events, which is exactly where per-core replay needs
                    // it for the malloc cache to stay consistent.
                    let cls = outcome.cls.expect("refills are small-path");
                    streams[victim].push(CoreEvent::McInvalidate { cls });
                    steal_invalidates += 1;
                }
                let stall = contention.charge(core, res, false);
                streams[core].push(CoreEvent::Malloc {
                    outcome,
                    post,
                    contention: stall,
                });
            }
            MtOp::Free { token, sized } => {
                let ptr = blocks
                    .remove(&token)
                    .unwrap_or_else(|| panic!("free of unknown token {token:#x}"));
                let outcome = alloc.free_on(core, ptr, sized);
                let post = post_list(&alloc, core, outcome.cls);
                let res = match &outcome.path {
                    FreePath::ThreadCachePush {
                        released: Some(_),
                        released_to_transfer,
                        ..
                    } => Some(if *released_to_transfer {
                        SharedRes::Transfer
                    } else {
                        SharedRes::Central
                    }),
                    _ => None,
                };
                let stall = contention.charge(core, res, outcome.remote);
                streams[core].push(CoreEvent::Free {
                    outcome,
                    post,
                    contention: stall,
                });
            }
            MtOp::AppRun { cycles } => streams[core].push(CoreEvent::AppRun {
                cycles: u64::from(cycles),
            }),
            MtOp::AppTouch {
                lines,
                working_set_lines,
            } => streams[core].push(CoreEvent::AppTouch {
                lines,
                working_set_lines,
            }),
        }
    }

    Capture {
        streams,
        alloc_stats: alloc.stats(),
        steal_invalidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_is_deterministic() {
        let t = MtTrace::producer_consumer(3, 120, 5);
        let a = capture(&t, TcMallocConfig::default());
        let b = capture(&t, TcMallocConfig::default());
        assert_eq!(a.alloc_stats, b.alloc_stats);
        assert_eq!(a.streams.len(), b.streams.len());
        for (x, y) in a.streams.iter().zip(&b.streams) {
            assert_eq!(x.len(), y.len());
        }
    }

    #[test]
    fn capture_streamed_through_text_io_matches_in_memory() {
        // Serialise a trace through the chunked MT text format, stream it
        // back through MtOpReader into capture_stream, and require the
        // exact capture the in-memory path produces.
        let t = MtTrace::producer_consumer(3, 90, 11);
        let direct = capture(&t, TcMallocConfig::default());
        let bytes = mallacc_workloads::write_mt_ops(t.cores(), t.ops().iter().copied(), Vec::new())
            .unwrap();
        let reader = mallacc_workloads::MtOpReader::new(bytes.as_slice()).unwrap();
        let streamed = capture_stream(
            reader.cores(),
            reader.map(|r| r.expect("round-trip parses")),
            TcMallocConfig::default(),
        );
        assert_eq!(direct.alloc_stats, streamed.alloc_stats);
        assert_eq!(direct.steal_invalidates, streamed.steal_invalidates);
        assert_eq!(direct.streams.len(), streamed.streams.len());
        for (a, b) in direct.streams.iter().zip(&streamed.streams) {
            assert_eq!(a.len(), b.len());
        }
    }

    #[test]
    fn remote_frees_are_captured_and_priced() {
        let t = MtTrace::producer_consumer(2, 200, 1);
        let c = capture(&t, TcMallocConfig::default());
        assert!(c.alloc_stats.remote_frees > 0, "ring must free remotely");
        let some_free_stalled = c.streams.iter().flatten().any(|e| {
            matches!(e, CoreEvent::Free { contention, outcome, .. }
                if outcome.remote && *contention >= REMOTE_FREE_CYCLES)
        });
        assert!(
            some_free_stalled,
            "remote frees must carry a line-pull cost"
        );
    }

    #[test]
    fn contention_model_charges_cross_core_only() {
        let mut m = ContentionModel::default();
        assert_eq!(m.charge(0, Some(SharedRes::Central), false), 0);
        // Same core again: its own history does not contend with itself.
        assert_eq!(m.charge(0, Some(SharedRes::Central), false), 0);
        // Another core: one contender in the window.
        assert_eq!(
            m.charge(1, Some(SharedRes::Central), false),
            2 * CENTRAL_LOCK_CYCLES
        );
        // Different resource: no collision.
        assert_eq!(m.charge(2, Some(SharedRes::Transfer), false), 0);
        // Fast-path op: free of charge, window untouched.
        assert_eq!(m.charge(3, None, false), 0);
        assert_eq!(m.charge(3, None, true), REMOTE_FREE_CYCLES);
    }

    #[test]
    fn steal_emits_invalidate_into_victim_stream() {
        use mallacc_workloads::MtOp::*;
        // Core 1 hoards a long 64-byte free list; core 0 then allocates
        // enough to drain the central list and force a steal from core 1.
        let mut ops = Vec::new();
        for n in 0..256u64 {
            ops.push((1usize, Malloc { size: 64, token: n }));
        }
        for n in 0..256u64 {
            ops.push((
                1usize,
                Free {
                    token: n,
                    sized: true,
                },
            ));
        }
        for n in 0..768u64 {
            ops.push((
                0usize,
                Malloc {
                    size: 64,
                    token: (1 << 32) | n,
                },
            ));
        }
        for n in 0..768u64 {
            ops.push((
                0usize,
                Free {
                    token: (1 << 32) | n,
                    sized: true,
                },
            ));
        }
        let t = MtTrace::from_ops(2, ops);
        let c = capture(&t, TcMallocConfig::default());
        assert!(c.alloc_stats.steals > 0, "trace must force a steal");
        assert_eq!(c.steal_invalidates, c.alloc_stats.steals);
        let victims = c.streams[1]
            .iter()
            .filter(|e| matches!(e, CoreEvent::McInvalidate { .. }))
            .count() as u64;
        assert_eq!(victims, c.steal_invalidates);
    }

    #[test]
    fn post_lists_match_refill_batches() {
        // After a CentralRefill, the captured post-list head must be the
        // outcome's `next` (the head after popping the returned object).
        let t = MtTrace::producer_consumer(2, 100, 3);
        let c = capture(&t, TcMallocConfig::default());
        for e in c.streams.iter().flatten() {
            if let CoreEvent::Malloc { outcome, post, .. } = e {
                if let MallocPath::CentralRefill { next, .. } = &outcome.path {
                    assert_eq!(post.head, *next, "post head diverged from refill");
                }
            }
        }
    }
}
