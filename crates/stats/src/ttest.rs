//! Student's t-tests.
//!
//! Table 2 of the paper reports full-program speedups only for workloads
//! where "a single-sided Student's T-test \[rejects\] a hypothesis of
//! full-program slowdown with 95+% probability". These helpers implement
//! that exact test: given per-trial baseline and accelerated run times, test
//! whether the speedup is significantly greater than zero.

use crate::special::student_t_cdf;
use crate::summary::Summary;

/// Result of a t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TTest {
    /// The t statistic.
    pub t: f64,
    /// Degrees of freedom used for the p-value.
    pub df: f64,
    /// One-sided p-value for the alternative "mean > hypothesised mean"
    /// (smaller means stronger evidence of speedup).
    pub p_greater: f64,
}

impl TTest {
    /// True if the one-sided test rejects the null at significance `alpha`
    /// (e.g. `0.05` for the paper's 95 % threshold).
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_greater < alpha
    }
}

/// One-sample, one-sided t-test of `H0: mean == mu0` against
/// `H1: mean > mu0`.
///
/// This is the test the paper applies to per-trial speedup samples with
/// `mu0 = 0` ("reject a hypothesis of full-program slowdown").
///
/// Returns `None` when there are fewer than two samples or the sample
/// variance is zero (the statistic is undefined).
///
/// # Example
///
/// ```
/// use mallacc_stats::ttest::one_sample;
///
/// // Consistent ~0.5% speedups across trials.
/// let speedups = [0.45, 0.52, 0.48, 0.51, 0.49];
/// let t = one_sample(&speedups, 0.0).unwrap();
/// assert!(t.significant_at(0.05));
/// ```
pub fn one_sample(samples: &[f64], mu0: f64) -> Option<TTest> {
    if samples.len() < 2 {
        return None;
    }
    let s = Summary::from_iter(samples.iter().copied());
    let sd = s.sample_std_dev();
    if sd == 0.0 {
        return None;
    }
    let n = samples.len() as f64;
    let t = (s.mean() - mu0) / (sd / n.sqrt());
    let df = n - 1.0;
    Some(TTest {
        t,
        df,
        p_greater: 1.0 - student_t_cdf(t, df),
    })
}

/// Welch's two-sample, one-sided t-test of `H1: mean(a) > mean(b)`.
///
/// Used to compare baseline vs. Mallacc run-time samples directly without
/// pairing (the paper's simulation trials are independent runs with
/// different random seeds).
///
/// Returns `None` if either side has fewer than two samples or both
/// variances are zero.
///
/// # Example
///
/// ```
/// use mallacc_stats::ttest::welch_two_sample;
///
/// let baseline = [100.0, 101.0, 99.5, 100.5];
/// let accel = [99.0, 99.2, 98.8, 99.1];
/// let t = welch_two_sample(&baseline, &accel).unwrap();
/// assert!(t.significant_at(0.05)); // baseline is significantly slower
/// ```
pub fn welch_two_sample(a: &[f64], b: &[f64]) -> Option<TTest> {
    if a.len() < 2 || b.len() < 2 {
        return None;
    }
    let sa = Summary::from_iter(a.iter().copied());
    let sb = Summary::from_iter(b.iter().copied());
    let (va, vb) = (sa.sample_variance(), sb.sample_variance());
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let se2 = va / na + vb / nb;
    if se2 == 0.0 {
        return None;
    }
    let t = (sa.mean() - sb.mean()) / se2.sqrt();
    // Welch–Satterthwaite degrees of freedom.
    let df = se2 * se2 / ((va / na).powi(2) / (na - 1.0) + (vb / nb).powi(2) / (nb - 1.0));
    Some(TTest {
        t,
        df,
        p_greater: 1.0 - student_t_cdf(t, df),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn too_few_samples() {
        assert_eq!(one_sample(&[1.0], 0.0), None);
        assert_eq!(welch_two_sample(&[1.0], &[1.0, 2.0]), None);
    }

    #[test]
    fn zero_variance_is_undefined() {
        assert_eq!(one_sample(&[2.0, 2.0, 2.0], 0.0), None);
        assert_eq!(welch_two_sample(&[1.0, 1.0], &[1.0, 1.0]), None);
    }

    #[test]
    fn clear_positive_effect_is_significant() {
        let samples = [0.78, 0.74, 0.81, 0.77, 0.76];
        let t = one_sample(&samples, 0.0).unwrap();
        assert!(t.t > 10.0);
        assert!(t.p_greater < 0.001);
        assert!(t.significant_at(0.05));
    }

    #[test]
    fn noise_masks_small_effect() {
        // Mean 0.1 but stddev ~2: not significant — exactly the paper's
        // reason for excluding some workloads from Table 2.
        let samples = [2.0, -1.8, 0.3, -2.1, 2.2, -0.1];
        let t = one_sample(&samples, 0.0).unwrap();
        assert!(!t.significant_at(0.05));
    }

    #[test]
    fn one_sample_matches_reference() {
        // Data: mean 1.0, sd 1.0, n=4 → t = 2.0, df = 3.
        let samples = [0.0, 1.0, 1.0, 2.0];
        let s = Summary::from_iter(samples);
        assert!((s.mean() - 1.0).abs() < 1e-12);
        let t = one_sample(&samples, 0.0).unwrap();
        let expected_t = 1.0 / ((2.0f64 / 3.0).sqrt() / 2.0);
        assert!((t.t - expected_t).abs() < 1e-12);
        assert_eq!(t.df, 3.0);
        // p for t≈2.449, df=3 is ≈ 0.0459 (just under 0.05).
        assert!((t.p_greater - 0.0459).abs() < 2e-3, "p={}", t.p_greater);
    }

    #[test]
    fn welch_direction() {
        let fast = [10.0, 10.1, 9.9, 10.05];
        let slow = [11.0, 11.1, 10.9, 11.05];
        let t = welch_two_sample(&slow, &fast).unwrap();
        assert!(t.t > 0.0 && t.significant_at(0.01));
        let t_rev = welch_two_sample(&fast, &slow).unwrap();
        assert!(t_rev.t < 0.0 && !t_rev.significant_at(0.5));
    }
}
