//! Scalar sample summaries: mean, variance, standard deviation, extrema —
//! plus [`Breakdown`], an integer cycle decomposition whose rendered
//! percentages always derive from the same integer counts as its totals.

use crate::json::Json;

/// Running summary of a set of `f64` samples.
///
/// Uses Welford's online algorithm so that variance is numerically stable
/// even for long runs of near-identical cycle counts (exactly what repeated
/// fast-path malloc calls produce).
///
/// # Example
///
/// ```
/// use mallacc_stats::Summary;
///
/// let mut s = Summary::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Builds a summary from an iterator of samples (also available via
    /// the [`FromIterator`] impl; this inherent form reads better at call
    /// sites that pass arrays).
    ///
    /// # Example
    ///
    /// ```
    /// let s = mallacc_stats::Summary::from_iter([1.0, 3.0]);
    /// assert_eq!(s.count(), 2);
    /// ```
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Self::new();
        for x in iter {
            s.record(x);
        }
        s
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean. Returns 0 for an empty summary.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased (n−1) sample variance. Returns 0 with fewer than two samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population (n) variance. Returns 0 for an empty summary.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest recorded sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Summary::from_iter(iter)
    }
}

/// A labelled integer cycle breakdown.
///
/// Tables and JSON reports both read the *same* integer counts, and every
/// derived value (total, fraction, percentage) is computed from those
/// integers on demand — so a table can never show percentages that drift
/// from the JSON dataset, and `sum(parts) == total()` holds by
/// construction.
///
/// # Example
///
/// ```
/// use mallacc_stats::Breakdown;
///
/// let b = Breakdown::from_parts([("memory", 15u64), ("execute", 5)]);
/// assert_eq!(b.total(), 20);
/// assert_eq!(b.fraction(0), 0.75);
/// assert_eq!(b.pct(0), "75.0%");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Breakdown {
    parts: Vec<(String, u64)>,
}

impl Breakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a breakdown from `(label, cycles)` pairs.
    pub fn from_parts<L, I>(parts: I) -> Self
    where
        L: Into<String>,
        I: IntoIterator<Item = (L, u64)>,
    {
        let mut b = Self::new();
        for (label, cycles) in parts {
            b.push(label, cycles);
        }
        b
    }

    /// Appends one part. Labels are kept in insertion order; pushing an
    /// existing label adds to its count instead of duplicating it.
    pub fn push(&mut self, label: impl Into<String>, cycles: u64) {
        let label = label.into();
        if let Some(p) = self.parts.iter_mut().find(|(l, _)| *l == label) {
            p.1 += cycles;
        } else {
            self.parts.push((label, cycles));
        }
    }

    /// The `(label, cycles)` parts in insertion order.
    pub fn parts(&self) -> &[(String, u64)] {
        &self.parts
    }

    /// Number of parts.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True when no part has been pushed.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Total cycles: the exact integer sum of every part.
    pub fn total(&self) -> u64 {
        self.parts.iter().map(|(_, c)| c).sum()
    }

    /// Integer cycles of part `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn cycles(&self, i: usize) -> u64 {
        self.parts[i].1
    }

    /// Integer cycles of the part named `label`, if present.
    pub fn cycles_of(&self, label: &str) -> Option<u64> {
        self.parts.iter().find(|(l, _)| l == label).map(|(_, c)| *c)
    }

    /// Fraction of the total held by part `i`, derived from the integer
    /// counts (0 when the total is 0).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn fraction(&self, i: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.parts[i].1 as f64 / total as f64
        }
    }

    /// Part `i` as a rendered percentage string (one decimal), derived
    /// from the same integers as [`Breakdown::total`].
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn pct(&self, i: usize) -> String {
        crate::table::pct(self.fraction(i))
    }

    /// The breakdown as a JSON object: every part by label (integer
    /// cycles) plus a `"total"` field carrying the integer sum — the same
    /// numbers any table rendering uses.
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = self
            .parts
            .iter()
            .map(|(l, c)| (l.clone(), Json::from(*c)))
            .collect();
        fields.push(("total".to_string(), Json::from(self.total())));
        Json::Obj(fields)
    }
}

/// Geometric mean of strictly positive values.
///
/// The paper summarises per-workload speedups with a geomean row
/// (Figures 13 and 14); this helper mirrors that.
///
/// Returns `None` if the input is empty or contains a non-positive value.
///
/// # Example
///
/// ```
/// let g = mallacc_stats::geometric_mean([1.0, 4.0]).unwrap();
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geometric_mean<I: IntoIterator<Item = f64>>(values: I) -> Option<f64> {
    let mut log_sum = 0.0;
    let mut n = 0u64;
    for v in values {
        if v <= 0.0 {
            return None;
        }
        log_sum += v.ln();
        n += 1;
    }
    (n > 0).then(|| (log_sum / n as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_inert() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn single_sample() {
        let s = Summary::from_iter([42.0]);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), Some(42.0));
        assert_eq!(s.max(), Some(42.0));
    }

    #[test]
    fn variance_matches_definition() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = Summary::from_iter(data);
        assert!((s.population_variance() - 4.0).abs() < 1e-12);
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let a_data = [1.0, 2.0, 3.0, 10.5];
        let b_data = [4.0, 5.5, -2.0];
        let mut merged = Summary::from_iter(a_data);
        merged.merge(&Summary::from_iter(b_data));
        let all = Summary::from_iter(a_data.into_iter().chain(b_data));
        assert_eq!(merged.count(), all.count());
        assert!((merged.mean() - all.mean()).abs() < 1e-12);
        assert!((merged.sample_variance() - all.sample_variance()).abs() < 1e-12);
        assert_eq!(merged.min(), all.min());
        assert_eq!(merged.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::from_iter([1.0, 2.0]);
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);
        let mut empty = Summary::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn geomean_basics() {
        assert_eq!(geometric_mean([]), None);
        assert_eq!(geometric_mean([1.0, -1.0]), None);
        assert_eq!(geometric_mean([0.0]), None);
        let g = geometric_mean([2.0, 8.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_conserves_total() {
        // The conservation law: the total IS the sum of the integer parts,
        // with no separately-maintained counter to drift from.
        let b = Breakdown::from_parts([
            ("base", 7u64),
            ("memory", 11),
            ("execute", 3),
            ("frontend", 0),
        ]);
        assert_eq!(b.total(), b.parts().iter().map(|(_, c)| c).sum::<u64>());
        assert_eq!(b.total(), 21);
        // Fractions derive from the same integers, so they sum to 1.
        let sum: f64 = (0..b.len()).map(|i| b.fraction(i)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_table_and_json_read_the_same_integers() {
        let b = Breakdown::from_parts([("memory", 2u64), ("execute", 1)]);
        let j = b.to_json();
        assert_eq!(j.get("memory").and_then(|v| v.as_f64()), Some(2.0));
        assert_eq!(j.get("total").and_then(|v| v.as_f64()), Some(3.0));
        assert_eq!(b.pct(0), "66.7%");
        assert_eq!(b.cycles_of("execute"), Some(1));
        assert_eq!(b.cycles_of("missing"), None);
    }

    #[test]
    fn breakdown_merges_duplicate_labels() {
        let mut b = Breakdown::new();
        b.push("memory", 5);
        b.push("memory", 3);
        assert_eq!(b.len(), 1);
        assert_eq!(b.total(), 8);
    }

    #[test]
    fn empty_breakdown_is_inert() {
        let b = Breakdown::new();
        assert!(b.is_empty());
        assert_eq!(b.total(), 0);
        assert_eq!(b.to_json().get("total").and_then(|v| v.as_f64()), Some(0.0));
    }

    #[test]
    fn extend_and_from_iterator_impls() {
        let mut s: Summary = [1.0, 2.0].into_iter().collect();
        s.extend([3.0]);
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 2.0);
    }
}
