//! Shared tolerance bands for validation and differential tests.
//!
//! Every slack constant used when comparing two models (simulated vs.
//! analytic latency, TCMalloc vs. jemalloc rounding) lives here, next to a
//! note on where the number comes from, so test files stop re-declaring
//! magic epsilons and the Table-1 comparison documents its bands in one
//! place.

/// Relative tolerance for the Table-1 analytic latency oracle: the
/// simulated kernel latency must be within ±2 % of the closed-form
/// expectation. The paper validates XIOSim against real hardware at a mean
/// error of 6.3 % (Table 1); our oracle compares the simulator against its
/// *own* analytic model, so the band is much tighter — the only expected
/// slack is pipeline fill/drain, which the absolute term below absorbs.
pub const KERNEL_REL_TOL: f64 = 0.02;

/// Absolute tolerance (cycles) added on top of [`KERNEL_REL_TOL`] for the
/// analytic latency oracle. Covers the constant pipeline fill/drain offset
/// (front-end depth + first-commit skew, ≈ 6 cycles on the Haswell config)
/// and the one-off TLB walk on kernels that warm lines but not pages, with
/// headroom. A systematic per-op error of even one cycle scales with kernel
/// length (thousands of cycles at the smoke scale) and blows straight
/// through this band.
pub const KERNEL_ABS_TOL_CYCLES: f64 = 32.0;

/// Relative tolerance for the sampled-vs-full engine differential over
/// random µop programs. Wider than [`KERNEL_REL_TOL`]: the fuzz corpus
/// deliberately runs short programs under aggressive cadences (a few
/// hundred measured µops against thousands fast-forwarded), where the
/// extrapolation noise is dominated by window-count statistics rather
/// than any systematic engine error. A run outside even this band is
/// still accepted if its own 95 % confidence interval covers the miss —
/// see `mallacc_validate::sample` — so this constant bounds *unpredicted*
/// error only.
pub const SAMPLED_DIFF_REL_TOL: f64 = 0.10;

/// Absolute tolerance (cycles) added on top of [`SAMPLED_DIFF_REL_TOL`]
/// for the sampled-vs-full differential; absorbs pipeline fill/drain and
/// the partial-window remainder at the end of a short program.
pub const SAMPLED_DIFF_ABS_TOL_CYCLES: f64 = 64.0;

/// Maximum documented divergence of small-object rounding between the
/// TCMalloc 2007 table and jemalloc's classic bins: both round a request up
/// to at most 2x (plus the 8/16-byte floor on tiny requests).
pub const ROUNDING_SLACK: f64 = 2.0;

/// Bytes-in-use slack across allocators for identical live sets. The
/// tables' worst single-class mismatch is [`ROUNDING_SLACK`]; aggregates
/// over mixed sizes stay well inside it.
pub const BYTES_IN_USE_SLACK: f64 = 2.0;

/// Whether `actual` is within the band `expected ± (rel·|expected| + abs)`.
///
/// This is the acceptance predicate of the analytic latency oracle; it is
/// exposed here so the oracle, the `repro validate` CLI and the Table-1
/// rendering in `repro figures` all agree on what "within band" means.
///
/// # Example
///
/// ```
/// use mallacc_stats::tol;
/// assert!(tol::within_band(1000.0, 1015.0, 0.02, 32.0));
/// assert!(!tol::within_band(1000.0, 1100.0, 0.02, 32.0));
/// ```
pub fn within_band(expected: f64, actual: f64, rel: f64, abs: f64) -> bool {
    (actual - expected).abs() <= rel * expected.abs() + abs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_is_symmetric_and_additive() {
        assert!(within_band(100.0, 100.0, 0.0, 0.0));
        assert!(within_band(100.0, 102.0, 0.02, 0.0));
        assert!(within_band(100.0, 98.0, 0.02, 0.0));
        assert!(!within_band(100.0, 103.0, 0.02, 0.0));
        // The absolute term dominates for short kernels.
        assert!(within_band(10.0, 40.0, 0.02, 32.0));
        assert!(!within_band(10.0, 43.0, 0.02, 32.0));
    }

    #[test]
    fn zero_expected_uses_absolute_term_only() {
        assert!(within_band(0.0, 31.0, 0.02, 32.0));
        assert!(!within_band(0.0, 33.0, 0.02, 32.0));
    }
}
