//! Confidence intervals on sample means.
//!
//! The sampled-simulation mode measures CPI over many detailed windows and
//! extrapolates to the whole run; the SMARTS methodology reports that
//! extrapolation with a Student-t confidence interval over the window
//! samples. [`mean_ci95`] is that exact computation, built on the same
//! [`student_t_cdf`] the paper's Table 2 significance test uses.

use crate::special::student_t_cdf;
use crate::summary::Summary;

/// A sample mean with its 95 % confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanCi {
    /// Number of samples.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the 95 % confidence interval (`mean ± half_width`).
    /// Zero when fewer than two samples or the variance is zero.
    pub half_width: f64,
}

impl MeanCi {
    /// Half-width as a fraction of the mean (0 when the mean is 0).
    pub fn relative(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.half_width / self.mean.abs()
        }
    }
}

/// Two-sided Student-t quantile: the `x` with `P(T_df <= x) = p`, found by
/// bisection on [`student_t_cdf`] (monotone, so bisection is exact to the
/// tolerance).
///
/// # Panics
///
/// Panics unless `df > 0` and `p` is strictly inside `(0, 1)`.
pub fn t_quantile(df: f64, p: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    assert!((0.0..1.0).contains(&p) && p > 0.0, "p must be in (0, 1)");
    let (mut lo, mut hi) = (-1e6, 1e6);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if student_t_cdf(mid, df) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Mean of `samples` with a 95 % Student-t confidence half-width.
///
/// With fewer than two samples (or zero variance) the half-width is 0 —
/// the caller still gets the point estimate.
pub fn mean_ci95(samples: &[f64]) -> MeanCi {
    let s = Summary::from_iter(samples.iter().copied());
    let n = samples.len();
    if n < 2 {
        return MeanCi {
            n,
            mean: s.mean(),
            half_width: 0.0,
        };
    }
    let var = s.sample_variance();
    if var <= 0.0 {
        return MeanCi {
            n,
            mean: s.mean(),
            half_width: 0.0,
        };
    }
    let se = (var / n as f64).sqrt();
    let t = t_quantile((n - 1) as f64, 0.975);
    MeanCi {
        n,
        mean: s.mean(),
        half_width: t * se,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_matches_known_t_values() {
        // t_{0.975} for a few df values (standard tables).
        for (df, expect) in [(1.0, 12.706), (4.0, 2.776), (30.0, 2.042)] {
            let q = t_quantile(df, 0.975);
            assert!(
                (q - expect).abs() < 0.01,
                "t_0.975(df={df}) = {q}, expected {expect}"
            );
        }
        // Symmetry.
        assert!((t_quantile(7.0, 0.25) + t_quantile(7.0, 0.75)).abs() < 1e-6);
    }

    #[test]
    fn ci_covers_known_example() {
        // n=5, mean=10, sd=1 → half-width = 2.776 * 1/sqrt(5) ≈ 1.2417.
        let samples = [9.0, 9.5, 10.0, 10.5, 11.0];
        let ci = mean_ci95(&samples);
        assert_eq!(ci.n, 5);
        assert!((ci.mean - 10.0).abs() < 1e-12);
        let sd = 0.7905694150420949; // sample sd of the five points
        let expect = t_quantile(4.0, 0.975) * sd / 5f64.sqrt();
        assert!((ci.half_width - expect).abs() < 1e-9, "{ci:?}");
        assert!(ci.relative() > 0.0);
    }

    #[test]
    fn degenerate_inputs_yield_zero_width() {
        assert_eq!(mean_ci95(&[]).half_width, 0.0);
        assert_eq!(mean_ci95(&[3.0]).mean, 3.0);
        assert_eq!(mean_ci95(&[3.0]).half_width, 0.0);
        let flat = mean_ci95(&[2.0, 2.0, 2.0]);
        assert_eq!(flat.half_width, 0.0);
        assert_eq!(flat.mean, 2.0);
    }
}
