//! Special functions needed for Student's t p-values.
//!
//! The Mallacc paper's Table 2 reports one-sided t-test p-values on
//! full-program speedups. Computing those requires the CDF of the Student's
//! t distribution, which reduces to the regularised incomplete beta function
//! `I_x(a, b)`. We implement the standard Lentz continued-fraction evaluation
//! (Numerical Recipes §6.4) to double precision.

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, n = 9 coefficients), accurate to
/// roughly 15 significant digits over the positive reals.
///
/// # Panics
///
/// Panics if `x <= 0` (the reproduction only ever needs positive arguments,
/// so a non-positive argument indicates a caller bug).
///
/// # Example
///
/// ```
/// // Γ(5) = 4! = 24
/// let g5 = mallacc_stats::ln_gamma(5.0).exp();
/// assert!((g5 - 24.0).abs() < 1e-10);
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");
    // Lanczos coefficients for g = 7.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularised incomplete beta function `I_x(a, b)` for `a, b > 0` and
/// `x ∈ [0, 1]`.
///
/// Evaluated with the Lentz modified continued fraction; converges in a few
/// dozen iterations for all arguments the t-test needs.
///
/// # Panics
///
/// Panics if `x` is outside `[0, 1]` or if `a` or `b` is not positive.
///
/// # Example
///
/// ```
/// // I_x(1, 1) is the identity on [0, 1].
/// let v = mallacc_stats::regularized_incomplete_beta(0.3, 1.0, 1.0);
/// assert!((v - 0.3).abs() < 1e-12);
/// ```
pub fn regularized_incomplete_beta(x: f64, a: f64, b: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x), "x must be in [0, 1], got {x}");
    assert!(
        a > 0.0 && b > 0.0,
        "a and b must be positive, got a={a} b={b}"
    );
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    // Prefactor x^a (1-x)^b / (a B(a, b)).
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    // The continued fraction converges fastest for x < (a+1)/(a+b+2);
    // otherwise use the symmetry I_x(a,b) = 1 − I_{1−x}(b,a).
    if x < (a + 1.0) / (a + b + 2.0) {
        ln_front.exp() * beta_cf(x, a, b) / a
    } else {
        // Symmetry I_x(a,b) = 1 − I_{1−x}(b,a), evaluated directly so the
        // two branches cannot recurse into each other.
        1.0 - ln_front.exp() * beta_cf(1.0 - x, b, a) / b
    }
}

/// Lentz continued fraction for the incomplete beta function.
fn beta_cf(x: f64, a: f64, b: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-16;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// CDF of the Student's t distribution with `df` degrees of freedom,
/// `P(T ≤ t)`.
///
/// # Panics
///
/// Panics if `df` is not positive.
///
/// # Example
///
/// ```
/// // The t distribution is symmetric around zero.
/// let p = mallacc_stats::student_t_cdf(0.0, 7.0);
/// assert!((p - 0.5).abs() < 1e-12);
/// ```
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive, got {df}");
    if t == 0.0 {
        return 0.5;
    }
    let x = df / (df + t * t);
    let p = 0.5 * regularized_incomplete_beta(x, 0.5 * df, 0.5);
    if t > 0.0 {
        1.0 - p
    } else {
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn gamma_of_integers_matches_factorial() {
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            close(ln_gamma(n as f64).exp(), fact, fact * 1e-10);
            fact *= n as f64;
        }
    }

    #[test]
    fn gamma_of_half_is_sqrt_pi() {
        close(ln_gamma(0.5).exp(), std::f64::consts::PI.sqrt(), 1e-12);
    }

    #[test]
    fn gamma_reflection_below_half() {
        // Γ(0.25) ≈ 3.625609908
        close(ln_gamma(0.25).exp(), 3.625_609_908_2, 1e-8);
    }

    #[test]
    fn beta_identity_ab_one() {
        for &x in &[0.0, 0.1, 0.37, 0.5, 0.9, 1.0] {
            close(regularized_incomplete_beta(x, 1.0, 1.0), x, 1e-12);
        }
    }

    #[test]
    fn beta_symmetry() {
        for &(x, a, b) in &[(0.3, 2.0, 5.0), (0.7, 0.5, 0.5), (0.42, 10.0, 3.0)] {
            let lhs = regularized_incomplete_beta(x, a, b);
            let rhs = 1.0 - regularized_incomplete_beta(1.0 - x, b, a);
            close(lhs, rhs, 1e-12);
        }
    }

    #[test]
    fn beta_known_value() {
        // I_{0.5}(2, 2) = 0.5 by symmetry; I_{0.25}(2, 2) = 5/32.
        close(regularized_incomplete_beta(0.5, 2.0, 2.0), 0.5, 1e-12);
        close(
            regularized_incomplete_beta(0.25, 2.0, 2.0),
            5.0 / 32.0,
            1e-12,
        );
    }

    #[test]
    fn t_cdf_symmetry_and_tails() {
        for &df in &[1.0, 2.0, 5.0, 30.0] {
            for &t in &[0.5, 1.0, 2.5] {
                let p_pos = student_t_cdf(t, df);
                let p_neg = student_t_cdf(-t, df);
                close(p_pos + p_neg, 1.0, 1e-12);
                assert!(p_pos > 0.5);
            }
        }
    }

    #[test]
    fn t_cdf_matches_tables() {
        // Standard critical values: P(T ≤ 2.015) with df=5 ≈ 0.95.
        close(student_t_cdf(2.015, 5.0), 0.95, 5e-4);
        // df=1 is the Cauchy distribution: P(T ≤ 1) = 0.75.
        close(student_t_cdf(1.0, 1.0), 0.75, 1e-10);
        // Large df approaches the normal: P(T ≤ 1.96) → 0.975.
        close(student_t_cdf(1.96, 1e6), 0.975, 1e-3);
    }
}
