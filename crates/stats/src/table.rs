//! Plain-text table rendering for the `repro` harness.
//!
//! Every table and figure regenerator prints its rows through [`Table`] so
//! the output is aligned and diff-friendly, mirroring the rows the paper
//! reports.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple monospace table builder.
///
/// # Example
///
/// ```
/// use mallacc_stats::table::Table;
///
/// let mut t = Table::new(&["workload", "speedup"]);
/// t.row(&["xapian.pages", "41.2%"]);
/// let s = t.render();
/// assert!(s.contains("xapian.pages"));
/// assert!(s.contains("speedup"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    aligns: Vec<Align>,
}

impl Table {
    /// Creates a table with the given column headers. The first column is
    /// left-aligned, the rest right-aligned (label + numbers convention).
    pub fn new(headers: &[&str]) -> Self {
        let aligns = headers
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            aligns,
        }
    }

    /// Overrides the alignment of each column.
    ///
    /// # Panics
    ///
    /// Panics if `aligns.len()` differs from the number of columns.
    pub fn with_aligns(mut self, aligns: &[Align]) -> Self {
        assert_eq!(
            aligns.len(),
            self.headers.len(),
            "alignment/column count mismatch"
        );
        self.aligns = aligns.to_vec();
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.headers.len(), "row/column count mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of already-owned cells.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row/column count mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a header underline.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for i in 0..ncols {
                if i > 0 {
                    out.push_str("  ");
                }
                let cell = &cells[i];
                let pad = widths[i] - cell.chars().count();
                match self.aligns[i] {
                    Align::Left => {
                        out.push_str(cell);
                        if i + 1 < ncols {
                            out.extend(std::iter::repeat_n(' ', pad));
                        }
                    }
                    Align::Right => {
                        out.extend(std::iter::repeat_n(' ', pad));
                        out.push_str(cell);
                    }
                }
            }
            out.push('\n');
        };
        emit(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal, e.g. `0.412` → `41.2%`.
pub fn pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

/// Formats a fraction as a signed percentage with two decimals, e.g.
/// `0.0043` → `+0.43%`.
pub fn pct_signed(frac: f64) -> String {
    format!("{:+.2}%", frac * 100.0)
}

/// Formats a cycle count with no decimals.
pub fn cycles(c: f64) -> String {
    format!("{c:.0}")
}

/// Renders a horizontal ASCII bar scaled so `max_value` spans `width` chars.
///
/// Used by the figure regenerators to sketch bar charts in the terminal.
///
/// # Example
///
/// ```
/// let bar = mallacc_stats::table::bar(5.0, 10.0, 10);
/// assert_eq!(bar.chars().count(), 5);
/// ```
pub fn bar(value: f64, max_value: f64, width: usize) -> String {
    if max_value <= 0.0 || value <= 0.0 {
        return String::new();
    }
    let n = ((value / max_value) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a", "1"]);
        t.row(&["longer-name", "123"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Numbers right-aligned: "1" ends at same column as "123".
        assert!(lines[2].ends_with('1'));
        assert!(lines[3].ends_with("123"));
    }

    #[test]
    #[should_panic(expected = "row/column count mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.412), "41.2%");
        assert_eq!(pct_signed(0.0043), "+0.43%");
        assert_eq!(pct_signed(-0.01), "-1.00%");
        assert_eq!(cycles(18.4), "18");
    }

    #[test]
    fn bar_scaling() {
        assert_eq!(bar(10.0, 10.0, 20).len(), 20);
        assert_eq!(bar(0.0, 10.0, 20), "");
        assert_eq!(bar(15.0, 10.0, 20).len(), 20); // clamped
        assert_eq!(bar(5.0, 0.0, 20), "");
    }

    #[test]
    fn left_alignment_for_labels() {
        let mut t = Table::new(&["label", "x"]);
        t.row(&["ab", "1"]);
        let s = t.render();
        assert!(s.lines().nth(2).unwrap().starts_with("ab"));
    }
}
