//! Statistics utilities for the Mallacc reproduction.
//!
//! The Mallacc paper ([Kanev et al., ASPLOS 2017]) reports its results as
//! latency *distributions* (PDFs/CDFs of per-call malloc cycles, e.g. Figures
//! 1, 2, 15 and 16), as summary speedups (Figures 13, 14 and 17), and as a
//! statistical significance table (Table 2, a one-sided Student's t-test on
//! full-program speedups). This crate provides exactly those building blocks:
//!
//! * [`LogHistogram`] — a logarithmically-binned histogram of cycle counts,
//!   used for the "time in calls vs. call duration" plots;
//! * [`Cdf`] — an empirical weighted CDF over arbitrary `f64` samples;
//! * [`Summary`] — mean / variance / standard deviation / min / max;
//! * [`ttest`] — one-sided one-sample and two-sample Student's t-tests with
//!   real p-values (via the regularised incomplete beta function);
//! * [`table`] — plain-text table rendering used by the `repro` binary so the
//!   harness prints the same rows the paper reports;
//! * [`json`] — a dependency-free deterministic JSON value (writer and
//!   parser) for the `repro --json` reports and the explore memo store;
//! * [`pareto`] — two-objective dominance, Pareto frontiers and knee
//!   selection for the design-space exploration subsystem;
//! * [`tol`] — the shared tolerance bands used by the validation subsystem
//!   and the differential allocator tests, documented in one place.
//!
//! # Example
//!
//! ```
//! use mallacc_stats::{LogHistogram, Summary};
//!
//! let mut h = LogHistogram::new();
//! for cycles in [18u64, 20, 22, 1200, 19] {
//!     h.record(cycles, cycles as f64); // weight by time spent in the call
//! }
//! assert!(h.total_weight() > 0.0);
//! let s = Summary::from_iter([1.0, 2.0, 3.0]);
//! assert_eq!(s.mean(), 2.0);
//! ```
//!
//! [Kanev et al., ASPLOS 2017]: https://doi.org/10.1145/3037697.3037736

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cdf;
mod ci;
mod hist;
pub mod json;
pub mod pareto;
mod special;
mod summary;
pub mod table;
pub mod tol;
pub mod ttest;

pub use cdf::Cdf;
pub use ci::{mean_ci95, t_quantile, MeanCi};
pub use hist::{Bin, LinearHistogram, LogHistogram};
pub use json::Json;
pub use pareto::{dominates, knee_index, pareto_frontier};
pub use special::{ln_gamma, regularized_incomplete_beta, student_t_cdf};
pub use summary::{geometric_mean, Breakdown, Summary};
