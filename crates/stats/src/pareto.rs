//! Pareto-frontier machinery for two-objective design-space exploration.
//!
//! The Mallacc trade-off is a gain (allocator-time improvement) bought
//! with a cost (silicon area, §6.4). A configuration *dominates* another
//! when it is no worse on both axes and strictly better on at least one;
//! the *frontier* is the set of non-dominated configurations; the *knee*
//! is the frontier point with the best margin over the cost/gain
//! diagonal — the generalisation of "best gain per area beyond minimum
//! usefulness" that `examples/cache_size_sweep.rs` used to hard-code.
//!
//! Points are `(cost, gain)` pairs: cost is minimised, gain maximised.
//! Non-finite coordinates never dominate and never reach the frontier.

/// True when `a` dominates `b`: `a` costs no more, gains no less, and is
/// strictly better on at least one axis.
pub fn dominates(a: (f64, f64), b: (f64, f64)) -> bool {
    let finite = |p: (f64, f64)| p.0.is_finite() && p.1.is_finite();
    if !finite(a) || !finite(b) {
        return false;
    }
    a.0 <= b.0 && a.1 >= b.1 && (a.0 < b.0 || a.1 > b.1)
}

/// Indices of the Pareto-optimal points among `points`, sorted by
/// ascending cost (ties by ascending index).
///
/// Duplicate points are all kept: equal points do not dominate each
/// other, so a frontier may contain coincident entries.
pub fn pareto_frontier(points: &[(f64, f64)]) -> Vec<usize> {
    let mut frontier: Vec<usize> = (0..points.len())
        .filter(|&i| {
            points[i].0.is_finite()
                && points[i].1.is_finite()
                && !points.iter().any(|&p| dominates(p, points[i]))
        })
        .collect();
    frontier.sort_by(|&a, &b| {
        points[a]
            .0
            .partial_cmp(&points[b].0)
            .expect("finite costs")
            .then(a.cmp(&b))
    });
    frontier
}

/// The knee of the frontier: normalise cost and gain to `[0, 1]` over the
/// frontier's span, then pick the point maximising `gain − cost` (the
/// farthest above the diagonal). Returns an index into `points`.
///
/// Ties prefer the higher-gain point: on a frontier gain rises with cost,
/// so when the margins tie (e.g. the two endpoints of a two-point
/// frontier, which always both score zero) the knee is the point that
/// actually buys improvement, not the cheap end of the span. Returns
/// `None` when no finite points exist. A degenerate frontier (all costs
/// equal, or all gains equal) falls back to the cheapest highest-gain
/// point.
pub fn knee_index(points: &[(f64, f64)]) -> Option<usize> {
    let frontier = pareto_frontier(points);
    let (&first, &last) = (frontier.first()?, frontier.last()?);
    let cost_span = points[last].0 - points[first].0;
    let gains: Vec<f64> = frontier.iter().map(|&i| points[i].1).collect();
    let gain_min = gains.iter().copied().fold(f64::INFINITY, f64::min);
    let gain_max = gains.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let gain_span = gain_max - gain_min;
    if cost_span <= 0.0 || gain_span <= 0.0 {
        // Degenerate: one axis does not discriminate; the frontier is
        // sorted by cost, and on a frontier gain rises with cost, so the
        // best point is the last (highest-gain) one — or the first when
        // gain is flat (cheapest).
        return Some(if gain_span > 0.0 { last } else { first });
    }
    let mut best: Option<(usize, f64)> = None;
    for &i in &frontier {
        let cost_n = (points[i].0 - points[first].0) / cost_span;
        let gain_n = (points[i].1 - gain_min) / gain_span;
        let margin = gain_n - cost_n;
        // `>= m - ε`: the frontier is iterated in ascending cost (and so
        // ascending gain), so accepting ties keeps the higher-gain point.
        let better = match best {
            None => true,
            Some((_, m)) => margin >= m - 1e-12,
        };
        if better {
            best = Some((i, margin));
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_is_strict_somewhere() {
        assert!(dominates((1.0, 5.0), (2.0, 5.0)));
        assert!(dominates((1.0, 5.0), (1.0, 4.0)));
        assert!(!dominates((1.0, 5.0), (1.0, 5.0)), "equal points");
        assert!(!dominates((1.0, 4.0), (2.0, 5.0)), "trade-off");
        assert!(!dominates((f64::NAN, 9.0), (2.0, 5.0)));
    }

    #[test]
    fn frontier_excludes_dominated_points() {
        // (cost, gain): index 1 is dominated by 0; 3 is dominated by 2.
        let pts = [(1.0, 5.0), (2.0, 4.0), (3.0, 9.0), (4.0, 8.0)];
        assert_eq!(pareto_frontier(&pts), vec![0, 2]);
    }

    #[test]
    fn frontier_keeps_duplicates_and_sorts_by_cost() {
        let pts = [(2.0, 7.0), (1.0, 3.0), (2.0, 7.0)];
        assert_eq!(pareto_frontier(&pts), vec![1, 0, 2]);
    }

    #[test]
    fn knee_finds_the_inflection() {
        // Sharp knee at cost 2: gains saturate beyond it.
        let pts = [(1.0, 0.0), (2.0, 9.0), (3.0, 9.5), (4.0, 10.0)];
        assert_eq!(knee_index(&pts), Some(1));
    }

    #[test]
    fn knee_handles_degenerate_sets() {
        assert_eq!(knee_index(&[]), None);
        assert_eq!(knee_index(&[(1.0, 2.0)]), Some(0));
        // Flat gain: cheapest wins.
        assert_eq!(knee_index(&[(1.0, 5.0), (2.0, 5.0)]), Some(0));
        // Flat cost: highest gain wins (both on the frontier? no — the
        // higher gain dominates, so the frontier is a single point).
        assert_eq!(knee_index(&[(1.0, 5.0), (1.0, 9.0)]), Some(1));
    }
}
