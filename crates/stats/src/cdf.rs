//! Exact empirical weighted CDFs.

/// An empirical, weighted cumulative distribution over `f64` samples.
///
/// Unlike [`crate::LogHistogram`], which bins, `Cdf` keeps every sample and
/// answers exact quantile/fraction queries. The reproduction uses it for the
/// size-class coverage curves of Figure 6 ("how many size classes cover 90 %
/// of malloc calls").
///
/// # Example
///
/// ```
/// use mallacc_stats::Cdf;
///
/// let mut cdf = Cdf::new();
/// cdf.record(1.0, 70.0);
/// cdf.record(2.0, 20.0);
/// cdf.record(3.0, 10.0);
/// assert_eq!(cdf.quantile(0.5), Some(1.0));
/// assert_eq!(cdf.quantile(0.95), Some(3.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    /// (value, weight) pairs; sorted lazily.
    samples: Vec<(f64, f64)>,
    sorted: bool,
    total_weight: f64,
}

impl Cdf {
    /// Creates an empty distribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a sample with the given non-negative weight.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN or `weight` is negative/NaN.
    pub fn record(&mut self, value: f64, weight: f64) {
        assert!(!value.is_nan(), "NaN sample");
        assert!(weight >= 0.0, "negative weight {weight}");
        if weight == 0.0 {
            return;
        }
        self.samples.push((value, weight));
        self.total_weight += weight;
        self.sorted = false;
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN by construction"));
            self.sorted = true;
        }
    }

    /// Total recorded weight.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Number of recorded (non-zero-weight) samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Fraction (0–1) of weight at values `<= x`.
    pub fn fraction_at_or_below(&mut self, x: f64) -> f64 {
        if self.total_weight == 0.0 {
            return 0.0;
        }
        self.ensure_sorted();
        let mut acc = 0.0;
        for &(v, w) in &self.samples {
            if v > x {
                break;
            }
            acc += w;
        }
        acc / self.total_weight
    }

    /// Smallest value `v` such that at least `q` (0–1) of the weight lies at
    /// or below `v`. Returns `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let target = q * self.total_weight;
        let mut acc = 0.0;
        for &(v, w) in &self.samples {
            acc += w;
            if acc >= target - 1e-12 {
                return Some(v);
            }
        }
        self.samples.last().map(|&(v, _)| v)
    }

    /// The median: [`Cdf::quantile`] at 0.50. `None` if empty.
    pub fn p50(&mut self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// The 99th percentile: the tail-latency headline number of
    /// datacenter SLOs. `None` if empty.
    pub fn p99(&mut self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// The 99.9th percentile — the "killer microseconds" tail the fleet
    /// reports track per malloc call. `None` if empty.
    pub fn p999(&mut self) -> Option<f64> {
        self.quantile(0.999)
    }

    /// The full CDF as `(value, cumulative percent)` steps.
    pub fn steps_percent(&mut self) -> Vec<(f64, f64)> {
        if self.total_weight == 0.0 {
            return Vec::new();
        }
        self.ensure_sorted();
        let mut out: Vec<(f64, f64)> = Vec::new();
        let mut acc = 0.0;
        for &(v, w) in &self.samples {
            acc += w;
            let pct = 100.0 * acc / self.total_weight;
            match out.last_mut() {
                Some(last) if last.0 == v => last.1 = pct,
                _ => out.push((v, pct)),
            }
        }
        out
    }
}

impl FromIterator<(f64, f64)> for Cdf {
    fn from_iter<I: IntoIterator<Item = (f64, f64)>>(iter: I) -> Self {
        let mut c = Cdf::new();
        for (v, w) in iter {
            c.record(v, w);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cdf() {
        let mut c = Cdf::new();
        assert!(c.is_empty());
        assert_eq!(c.quantile(0.5), None);
        assert_eq!(c.fraction_at_or_below(100.0), 0.0);
        assert!(c.steps_percent().is_empty());
    }

    #[test]
    fn zero_weight_ignored() {
        let mut c = Cdf::new();
        c.record(5.0, 0.0);
        assert!(c.is_empty());
    }

    #[test]
    fn quantiles_on_weighted_data() {
        let mut c: Cdf = [(1.0, 70.0), (2.0, 20.0), (3.0, 10.0)]
            .into_iter()
            .collect();
        assert_eq!(c.quantile(0.0), Some(1.0));
        assert_eq!(c.quantile(0.7), Some(1.0));
        assert_eq!(c.quantile(0.71), Some(2.0));
        assert_eq!(c.quantile(0.9), Some(2.0));
        assert_eq!(c.quantile(0.91), Some(3.0));
        assert_eq!(c.quantile(1.0), Some(3.0));
    }

    #[test]
    fn fraction_at_or_below_is_monotone() {
        let mut c: Cdf = [(10.0, 1.0), (20.0, 1.0), (30.0, 2.0)]
            .into_iter()
            .collect();
        let f10 = c.fraction_at_or_below(10.0);
        let f20 = c.fraction_at_or_below(20.0);
        let f25 = c.fraction_at_or_below(25.0);
        let f30 = c.fraction_at_or_below(30.0);
        assert!((f10 - 0.25).abs() < 1e-12);
        assert!((f20 - 0.5).abs() < 1e-12);
        assert_eq!(f20, f25);
        assert!((f30 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn steps_merge_duplicate_values() {
        let mut c: Cdf = [(1.0, 1.0), (1.0, 1.0), (2.0, 2.0)].into_iter().collect();
        let steps = c.steps_percent();
        assert_eq!(steps.len(), 2);
        assert!((steps[0].1 - 50.0).abs() < 1e-12);
        assert!((steps[1].1 - 100.0).abs() < 1e-12);
    }

    #[test]
    fn tail_quantiles_use_exact_ranks() {
        // 1000 equally weighted distinct values 1..=1000. quantile(q)
        // returns the smallest v with at least q of the weight at or
        // below it, so the exact ranks are ceil(q * 1000).
        let mut c: Cdf = (1..=1000).map(|v| (v as f64, 1.0)).collect();
        assert_eq!(c.p50(), Some(500.0));
        assert_eq!(c.p99(), Some(990.0));
        assert_eq!(c.p999(), Some(999.0));
        assert_eq!(c.quantile(1.0), Some(1000.0));

        // With 10 samples, p99 and p999 both land on the last-rank value
        // (ceil(9.9) = ceil(9.99) = 10) — small samples saturate the tail.
        let mut small: Cdf = (1..=10).map(|v| (v as f64, 1.0)).collect();
        assert_eq!(small.p50(), Some(5.0));
        assert_eq!(small.p99(), Some(10.0));
        assert_eq!(small.p999(), Some(10.0));

        // Weighted: one heavy fast mode and a 0.5% slow tail. p50 stays
        // in the fast mode; p999 must surface the tail value.
        let mut w: Cdf = [(20.0, 99.5), (400.0, 0.5)].into_iter().collect();
        assert_eq!(w.p50(), Some(20.0));
        assert_eq!(w.p99(), Some(20.0));
        assert_eq!(w.p999(), Some(400.0));
        assert_eq!(Cdf::new().p999(), None);
    }

    #[test]
    fn records_after_query_resort() {
        let mut c = Cdf::new();
        c.record(5.0, 1.0);
        assert_eq!(c.quantile(1.0), Some(5.0));
        c.record(1.0, 3.0);
        assert_eq!(c.quantile(0.5), Some(1.0));
    }
}
