//! A minimal, deterministic JSON value: writer and parser.
//!
//! The workspace is fully offline (no serde), and the harness needs
//! machine-readable output in exactly two places: the `repro --json`
//! reports and the explore subsystem's memo store. Both only require a
//! small, order-preserving value type whose rendering is byte-stable —
//! object keys keep insertion order, numbers print via Rust's
//! shortest-round-trip `f64` formatting, and non-finite numbers become
//! `null` (JSON has no encoding for them).

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order so renders are
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integers survive exactly up to 2^53.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The `(key, value)` pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Renders compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_num(out, *x),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}

impl From<bool> for Json {
    fn from(x: bool) -> Json {
        Json::Bool(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

fn write_num(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 9_007_199_254_740_992.0 {
        let _ = write!(out, "{}", x as i64);
    } else {
        // Rust's f64 Display is the shortest string that round-trips.
        let _ = write!(out, "{x}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

/// Parses a JSON document.
pub fn parse(input: &str) -> Result<Json, JsonParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters"));
    }
    Ok(value)
}

fn err(offset: usize, message: &str) -> JsonParseError {
    JsonParseError {
        offset,
        message: message.to_string(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), JsonParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(err(*pos, "unexpected token"))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonParseError> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err(err(*pos, "unexpected end of input"));
    };
    match b {
        b'n' => expect(bytes, pos, "null").map(|()| Json::Null),
        b't' => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        b'f' => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        b'"' => parse_string(bytes, pos).map(Json::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected ',' or ']'")),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(err(*pos, "expected ':'"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(err(*pos, "expected ',' or '}'")),
                }
            }
        }
        _ => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonParseError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(err(*pos, "expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(err(*pos, "unterminated string"));
        };
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(err(*pos, "unterminated escape"));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| err(*pos, "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        *pos += 4;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(err(*pos, "unknown escape")),
                }
            }
            _ => {
                // Consume one UTF-8 character.
                let s =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "invalid UTF-8"))?;
                let c = s.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonParseError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII slice");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err(start, "invalid number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::obj([
            ("name", "tp_small".into()),
            ("gain", 43.25.into()),
            ("entries", 16u64.into()),
            (
                "flags",
                Json::Arr(vec![true.into(), false.into(), Json::Null]),
            ),
            ("nested", Json::obj([("quote\"\\", "line\nbreak".into())])),
        ]);
        for text in [doc.render(), doc.render_pretty()] {
            assert_eq!(parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn rendering_is_deterministic_and_order_preserving() {
        let a = Json::obj([("b", 1u64.into()), ("a", 2u64.into())]);
        assert_eq!(a.render(), "{\"b\":1,\"a\":2}");
        assert_eq!(a.render(), a.clone().render());
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(12_000.0).render(), "12000");
        assert_eq!(Json::Num(0.5).render(), "0.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(-3.0).render(), "-3");
    }

    #[test]
    fn float_round_trip_is_exact() {
        let x = 18.300000000000004f64;
        let parsed = parse(&Json::Num(x).render()).unwrap();
        assert_eq!(parsed.as_f64(), Some(x));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"\\x\""] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn getters_navigate_objects() {
        let doc = parse("{\"a\": {\"b\": [1, \"x\"]}}").unwrap();
        let arr = doc.get("a").and_then(|a| a.get("b")).unwrap();
        assert_eq!(arr.as_arr().unwrap()[0].as_f64(), Some(1.0));
        assert_eq!(arr.as_arr().unwrap()[1].as_str(), Some("x"));
    }
}
