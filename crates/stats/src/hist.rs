//! Histograms over per-call cycle counts.
//!
//! The paper's distribution plots (Figures 1, 2, 15, 16) put *call duration in
//! cycles* on a log-scaled x axis and *time spent in calls* (not call count)
//! on the y axis. [`LogHistogram`] reproduces that: samples are binned by
//! `log2` of the cycle count with a configurable number of sub-bins per
//! octave, and each sample carries a weight (the cycles it contributes).

/// One histogram bin: `[lo, hi)` with an accumulated weight and count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bin {
    /// Inclusive lower bound of the bin, in the sample's units.
    pub lo: f64,
    /// Exclusive upper bound of the bin.
    pub hi: f64,
    /// Sum of the weights of samples in the bin.
    pub weight: f64,
    /// Number of samples in the bin.
    pub count: u64,
}

impl Bin {
    /// Geometric midpoint of the bin, convenient for plotting on a log axis.
    pub fn mid(&self) -> f64 {
        (self.lo * self.hi).sqrt()
    }
}

/// A logarithmically-binned, weighted histogram of `u64` samples.
///
/// # Example
///
/// ```
/// use mallacc_stats::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// h.record(20, 20.0);   // a 20-cycle fast-path call
/// h.record(20_000, 2e4); // a slow page-allocator call
/// let pdf = h.pdf_percent();
/// // Time-weighted: the slow call dominates.
/// assert!(pdf.last().unwrap().1 > 90.0);
/// ```
#[derive(Debug, Clone)]
pub struct LogHistogram {
    /// Sub-bins per factor-of-two octave.
    bins_per_octave: u32,
    /// Bin index -> (weight, count). Index is `floor(log2(x) * bins_per_octave)`.
    bins: Vec<(f64, u64)>,
    total_weight: f64,
    total_count: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Default sub-bin resolution: 8 bins per octave, enough to resolve the
    /// paper's 18-vs-13-cycle fast-path shift.
    pub const DEFAULT_BINS_PER_OCTAVE: u32 = 8;

    /// Creates a histogram with the default resolution.
    pub fn new() -> Self {
        Self::with_resolution(Self::DEFAULT_BINS_PER_OCTAVE)
    }

    /// Creates a histogram with `bins_per_octave` sub-bins per factor of two.
    ///
    /// # Panics
    ///
    /// Panics if `bins_per_octave` is zero.
    pub fn with_resolution(bins_per_octave: u32) -> Self {
        assert!(bins_per_octave > 0, "need at least one bin per octave");
        Self {
            bins_per_octave,
            bins: Vec::new(),
            total_weight: 0.0,
            total_count: 0,
        }
    }

    fn bin_index(&self, value: u64) -> usize {
        let v = value.max(1) as f64;
        (v.log2() * self.bins_per_octave as f64).floor() as usize
    }

    /// Records a sample `value` (e.g. a call's duration in cycles) with an
    /// associated `weight` (e.g. the same duration, to weight by time).
    pub fn record(&mut self, value: u64, weight: f64) {
        let idx = self.bin_index(value);
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, (0.0, 0));
        }
        self.bins[idx].0 += weight;
        self.bins[idx].1 += 1;
        self.total_weight += weight;
        self.total_count += 1;
    }

    /// Records `value` weighted by itself — the paper's "time in calls" view.
    pub fn record_time_weighted(&mut self, value: u64) {
        self.record(value, value as f64);
    }

    /// Sum of all recorded weights.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Number of recorded samples.
    pub fn total_count(&self) -> u64 {
        self.total_count
    }

    /// Merges another histogram recorded at the same resolution.
    ///
    /// # Panics
    ///
    /// Panics if the resolutions differ.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(
            self.bins_per_octave, other.bins_per_octave,
            "cannot merge histograms with different resolutions"
        );
        if other.bins.len() > self.bins.len() {
            self.bins.resize(other.bins.len(), (0.0, 0));
        }
        for (dst, src) in self.bins.iter_mut().zip(&other.bins) {
            dst.0 += src.0;
            dst.1 += src.1;
        }
        self.total_weight += other.total_weight;
        self.total_count += other.total_count;
    }

    /// Returns the non-empty bins in increasing order of value.
    pub fn bins(&self) -> Vec<Bin> {
        let k = self.bins_per_octave as f64;
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, (_, c))| *c > 0)
            .map(|(i, &(weight, count))| Bin {
                lo: 2f64.powf(i as f64 / k),
                hi: 2f64.powf((i + 1) as f64 / k),
                weight,
                count,
            })
            .collect()
    }

    /// PDF of weight per bin, in percent: `(bin midpoint, % of total weight)`.
    pub fn pdf_percent(&self) -> Vec<(f64, f64)> {
        if self.total_weight == 0.0 {
            return Vec::new();
        }
        self.bins()
            .into_iter()
            .map(|b| (b.mid(), 100.0 * b.weight / self.total_weight))
            .collect()
    }

    /// Cumulative weight distribution, in percent: `(bin upper edge, % ≤ edge)`.
    pub fn cdf_percent(&self) -> Vec<(f64, f64)> {
        if self.total_weight == 0.0 {
            return Vec::new();
        }
        let mut acc = 0.0;
        self.bins()
            .into_iter()
            .map(|b| {
                acc += b.weight;
                (b.hi, 100.0 * acc / self.total_weight)
            })
            .collect()
    }

    /// Fraction (0–1) of total weight contributed by samples `< threshold`.
    ///
    /// Bins straddling the threshold are apportioned by log-linear
    /// interpolation; the paper uses this to report e.g. "more than 60 % of
    /// malloc time is spent on calls that take less than 100 cycles".
    pub fn weight_fraction_below(&self, threshold: u64) -> f64 {
        if self.total_weight == 0.0 {
            return 0.0;
        }
        let t = threshold.max(1) as f64;
        let mut acc = 0.0;
        for b in self.bins() {
            if b.hi <= t {
                acc += b.weight;
            } else if b.lo < t {
                let frac = (t.ln() - b.lo.ln()) / (b.hi.ln() - b.lo.ln());
                acc += b.weight * frac;
            }
        }
        acc / self.total_weight
    }

    /// Approximate weighted quantile: the upper edge of the first bin at or
    /// beyond cumulative fraction `q` (0–1) of the total weight.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile_value(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.total_weight == 0.0 {
            return None;
        }
        let target = q * self.total_weight;
        let mut acc = 0.0;
        for b in self.bins() {
            acc += b.weight;
            if acc >= target - 1e-12 {
                return Some(b.hi);
            }
        }
        None
    }

    /// Weighted mean of the recorded samples (exact, not binned).
    pub fn mean_value(&self) -> f64 {
        if self.total_count == 0 {
            0.0
        } else {
            // total_weight is Σ value_i when time-weighted; but for generality
            // we track the exact mean via weight/count only when weights are
            // the values themselves. Use bins as an approximation otherwise.
            self.total_weight / self.total_count as f64
        }
    }
}

/// A fixed-width, linearly-binned weighted histogram.
///
/// Used for the size-class usage distributions (Figure 6), where the x axis
/// is the small integer "number of size classes".
///
/// # Example
///
/// ```
/// use mallacc_stats::LinearHistogram;
///
/// let mut h = LinearHistogram::new(1.0);
/// h.record(3.0, 1.0);
/// h.record(3.4, 2.0);
/// assert_eq!(h.bins().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct LinearHistogram {
    width: f64,
    bins: Vec<(f64, u64)>,
    total_weight: f64,
}

impl LinearHistogram {
    /// Creates a histogram with bins of the given width starting at zero.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not strictly positive and finite.
    pub fn new(width: f64) -> Self {
        assert!(
            width > 0.0 && width.is_finite(),
            "invalid bin width {width}"
        );
        Self {
            width,
            bins: Vec::new(),
            total_weight: 0.0,
        }
    }

    /// Records a non-negative sample with a weight.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or not finite.
    pub fn record(&mut self, value: f64, weight: f64) {
        assert!(value >= 0.0 && value.is_finite(), "invalid sample {value}");
        let idx = (value / self.width).floor() as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, (0.0, 0));
        }
        self.bins[idx].0 += weight;
        self.bins[idx].1 += 1;
        self.total_weight += weight;
    }

    /// Sum of all recorded weights.
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// Non-empty bins in increasing order.
    pub fn bins(&self) -> Vec<Bin> {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, (_, c))| *c > 0)
            .map(|(i, &(weight, count))| Bin {
                lo: i as f64 * self.width,
                hi: (i + 1) as f64 * self.width,
                weight,
                count,
            })
            .collect()
    }

    /// Cumulative distribution in percent over bin upper edges.
    pub fn cdf_percent(&self) -> Vec<(f64, f64)> {
        if self.total_weight == 0.0 {
            return Vec::new();
        }
        let mut acc = 0.0;
        self.bins()
            .into_iter()
            .map(|b| {
                acc += b.weight;
                (b.hi, 100.0 * acc / self.total_weight)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_bins_cover_sample() {
        let mut h = LogHistogram::new();
        for v in [1u64, 2, 3, 17, 100, 65_536] {
            h.record(v, 1.0);
            let b = h.bins();
            let covered = b
                .iter()
                .any(|bin| bin.lo <= v as f64 * 1.000001 && (v as f64) < bin.hi * 1.000001);
            assert!(covered, "sample {v} not covered by any bin: {b:?}");
        }
        assert_eq!(h.total_count(), 6);
    }

    #[test]
    fn pdf_sums_to_100() {
        let mut h = LogHistogram::new();
        for v in [18u64, 20, 22, 300, 4000, 120_000] {
            h.record_time_weighted(v);
        }
        let total: f64 = h.pdf_percent().iter().map(|(_, p)| p).sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_100() {
        let mut h = LogHistogram::new();
        for v in 1..500u64 {
            h.record_time_weighted(v);
        }
        let cdf = h.cdf_percent();
        for w in cdf.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert!((cdf.last().unwrap().1 - 100.0).abs() < 1e-9);
    }

    #[test]
    fn weight_fraction_below_extremes() {
        let mut h = LogHistogram::new();
        h.record_time_weighted(10);
        h.record_time_weighted(10_000);
        assert_eq!(h.weight_fraction_below(1), 0.0);
        assert!((h.weight_fraction_below(1_000_000) - 1.0).abs() < 1e-12);
        // The 10k-cycle call carries ~99.9% of the time weight.
        let below100 = h.weight_fraction_below(100);
        assert!(below100 > 0.0 && below100 < 0.01, "got {below100}");
    }

    #[test]
    fn quantiles_follow_weight() {
        let mut h = LogHistogram::new();
        h.record(10, 90.0);
        h.record(1000, 10.0);
        let p50 = h.quantile_value(0.5).unwrap();
        assert!(p50 < 20.0, "median should sit in the heavy bin: {p50}");
        let p99 = h.quantile_value(0.99).unwrap();
        assert!(p99 > 500.0, "p99 should reach the tail: {p99}");
        assert_eq!(LogHistogram::new().quantile_value(0.5), None);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LogHistogram::new();
        a.record(10, 1.0);
        let mut b = LogHistogram::new();
        b.record(10, 3.0);
        b.record(1000, 1.0);
        a.merge(&b);
        assert_eq!(a.total_count(), 3);
        assert!((a.total_weight() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different resolutions")]
    fn merge_rejects_mismatched_resolution() {
        let mut a = LogHistogram::with_resolution(4);
        let b = LogHistogram::with_resolution(8);
        a.merge(&b);
    }

    #[test]
    fn zero_sample_goes_to_first_bin() {
        let mut h = LogHistogram::new();
        h.record(0, 1.0);
        assert_eq!(h.bins()[0].count, 1);
    }

    #[test]
    fn linear_histogram_cdf() {
        let mut h = LinearHistogram::new(1.0);
        for (v, w) in [(0.5, 50.0), (1.5, 25.0), (4.2, 25.0)] {
            h.record(v, w);
        }
        let cdf = h.cdf_percent();
        assert_eq!(cdf.len(), 3);
        assert!((cdf[0].1 - 50.0).abs() < 1e-12);
        assert!((cdf[1].1 - 75.0).abs() < 1e-12);
        assert!((cdf[2].1 - 100.0).abs() < 1e-12);
    }

    #[test]
    fn bin_midpoint_is_geometric() {
        let b = Bin {
            lo: 2.0,
            hi: 8.0,
            weight: 1.0,
            count: 1,
        };
        assert!((b.mid() - 4.0).abs() < 1e-12);
    }
}
