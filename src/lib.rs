//! Top-level umbrella for the Mallacc reproduction workspace.
//!
//! This crate exists to host the runnable [examples](https://github.com/example/mallacc-repro/tree/main/examples)
//! and the cross-crate integration tests in `tests/`. It re-exports the
//! member crates under short names so examples can write, e.g.,
//! `use mallacc_repro::workloads::Microbenchmark`.
//!
//! See the workspace [README](https://github.com/example/mallacc-repro) for
//! the architecture overview, and `DESIGN.md` for the per-experiment index.

#![forbid(unsafe_code)]

pub use mallacc as accel;
pub use mallacc_cache as cache;
pub use mallacc_jemalloc as jemalloc;
pub use mallacc_ooo as ooo;
pub use mallacc_stats as stats;
pub use mallacc_tcmalloc as tcmalloc;
pub use mallacc_workloads as workloads;
