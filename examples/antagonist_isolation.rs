//! Cache isolation under an antagonistic application — §3.2's motivation
//! ("a cheap 18-cycle fast-path call can turn into a hefty 100-cycle
//! stall") and the `antagonist` microbenchmark's result.
//!
//! ```sh
//! cargo run --release --example antagonist_isolation
//! ```
//!
//! Runs the Gaussian allocation mix at increasing levels of cache
//! antagonism (the per-call eviction fraction of each L1/L2 set) and shows
//! how the baseline fast path degrades while the malloc cache keeps the
//! free-list head accesses isolated from the application's working set.

use mallacc::{MallocSim, Mode};
use mallacc_workloads::{Microbenchmark, Op, Trace};

/// Rebuilds the gauss_free trace with a configurable antagonism level.
fn trace_with_antagonism(per_mille: u16, mallocs: usize, seed: u64) -> Trace {
    let base = Microbenchmark::GaussFree.trace(mallocs, seed);
    let mut t = Trace::new();
    for &op in base.ops() {
        t.push(op);
        if per_mille > 0 {
            if let Op::Malloc { .. } = op {
                t.push(Op::Antagonize { per_mille });
            }
        }
    }
    t
}

fn mean_malloc(mode: Mode, per_mille: u16) -> f64 {
    let mut sim = MallocSim::new(mode);
    trace_with_antagonism(per_mille, 800, 5).replay(&mut sim);
    sim.reset_totals();
    let stats = trace_with_antagonism(per_mille, 4_000, 6).replay(&mut sim);
    stats.mean_malloc_cycles()
}

fn main() {
    println!("mean malloc latency (cycles) vs antagonism level");
    println!(
        "{:>12} {:>10} {:>10} {:>12}",
        "evicted/set", "baseline", "mallacc", "improvement"
    );
    for per_mille in [0u16, 250, 500, 750, 1000] {
        let base = mean_malloc(Mode::Baseline, per_mille);
        let accel = mean_malloc(Mode::mallacc_default(), per_mille);
        println!(
            "{:>11.0}% {:>10.1} {:>10.1} {:>11.1}%",
            f64::from(per_mille) / 10.0,
            base,
            accel,
            100.0 * (1.0 - accel / base)
        );
    }
    println!(
        "\nThe baseline's pop loads (head, *head) miss more as eviction \
         pressure rises; Mallacc's cached copies answer immediately, so \
         the gap widens — the paper's Figure 16 'cache isolation' effect."
    );
}
