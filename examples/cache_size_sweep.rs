//! Sizing the malloc cache for a workload — the Figure 17 methodology as a
//! hardware-design exercise.
//!
//! ```sh
//! cargo run --release --example cache_size_sweep [workload]
//! ```
//!
//! Sweeps malloc cache sizes over a chosen workload (default:
//! `483.xalancbmk`, the broadest size-class mix in the paper's suite),
//! reports the allocator-time improvement and the marginal silicon cost per
//! entry count, and picks the knee of the curve.

use mallacc::{AccelConfig, AreaEstimate, MallocSim, Mode};
use mallacc_workloads::MacroWorkload;

fn allocator_cycles(mode: Mode, w: &MacroWorkload) -> f64 {
    let mut sim = MallocSim::new(mode);
    w.trace(1_500, 77).replay(&mut sim);
    sim.reset_totals();
    let stats = w.trace(8_000, 78).replay(&mut sim);
    stats.allocator_cycles() as f64
}

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "483.xalancbmk".to_string());
    let w = MacroWorkload::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown workload {name}; pick one of:");
        for w in MacroWorkload::all() {
            eprintln!("  {}", w.name);
        }
        std::process::exit(2);
    });

    println!("malloc cache sweep on {}", w.name);
    println!(
        "{:>8} {:>12} {:>12} {:>14}",
        "entries", "improvement", "area um2", "um2 per point"
    );

    let base = allocator_cycles(Mode::Baseline, &w);
    let mut best = (0usize, f64::NEG_INFINITY);
    let mut rows = Vec::new();
    for entries in [2usize, 4, 8, 12, 16, 24, 32, 48, 64] {
        let cfg = AccelConfig::with_entries(entries);
        let cycles = allocator_cycles(Mode::Mallacc(cfg), &w);
        let gain = 100.0 * (1.0 - cycles / base);
        let area = AreaEstimate::for_entries(entries).total_um2();
        rows.push((entries, gain, area));
        // Knee selection: best gain-per-area beyond a minimum usefulness.
        let score = gain - area / 400.0;
        if score > best.1 {
            best = (entries, score);
        }
    }
    for (entries, gain, area) in &rows {
        println!(
            "{:>8} {:>11.1}% {:>12.0} {:>14.1}",
            entries,
            gain,
            area,
            if *gain > 0.0 {
                area / gain
            } else {
                f64::INFINITY
            }
        );
    }
    let limit = allocator_cycles(Mode::limit_all(), &w);
    println!(
        "\nlimit study: {:.1}%   (the paper settles on 16 entries; this \
         workload's knee: {} entries)",
        100.0 * (1.0 - limit / base),
        best.0
    );
}
