//! Sizing the malloc cache for a workload — the Figure 17 methodology as a
//! hardware-design exercise.
//!
//! ```sh
//! cargo run --release --example cache_size_sweep [workload]
//! ```
//!
//! Sweeps malloc cache sizes over a chosen workload (default:
//! `483.xalancbmk`, the broadest size-class mix in the paper's suite) and
//! picks the knee of the improvement-vs-area curve. This is a thin client
//! of the `mallacc-explore` sweep engine: the same grid, Pareto frontier
//! and knee selection are available for every axis of the design space via
//! `repro explore`.

use mallacc_explore::{run_sweep, ParamGrid, SweepOptions};
use mallacc_workloads::resolve_or_list;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "483.xalancbmk".to_string());
    let workload = resolve_or_list(&name);

    let grid = ParamGrid::entries_sweep(workload.name());
    let report = run_sweep(&grid, &SweepOptions::default()).unwrap_or_else(|e| {
        eprintln!("cache_size_sweep: {e}");
        std::process::exit(1);
    });

    println!("malloc cache sweep on {}", workload.name());
    println!(
        "{:>8} {:>12} {:>12} {:>14}",
        "entries", "improvement", "area um2", "um2 per point"
    );
    for (point, result) in report.points.iter().zip(&report.results) {
        println!(
            "{:>8} {:>11.1}% {:>12.0} {:>14.1}",
            point.entries,
            result.improvement_pct,
            result.area_um2,
            if result.improvement_pct > 0.0 {
                result.area_um2 / result.improvement_pct
            } else {
                f64::INFINITY
            }
        );
    }
    match report.knee {
        Some(knee) => println!(
            "\nknee of the improvement-vs-area curve: {} entries \
             ({:.1}% improvement at {:.0} um2; the paper settles on 16)",
            report.points[knee].entries,
            report.results[knee].improvement_pct,
            report.results[knee].area_um2
        ),
        None => println!("\nno knee: the sweep produced no points"),
    }
}
