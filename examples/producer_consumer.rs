//! Cross-thread memory migration — the §3.1 design requirement that
//! "memory can migrate from thread to thread to avoid memory blowup in
//! scenarios where one thread allocates and another thread frees".
//!
//! ```sh
//! cargo run --release --example producer_consumer
//! ```
//!
//! Runs a producer/consumer pipeline over the functional TCMalloc model
//! with 2–8 thread caches and reports the allocator's footprint, the
//! migration machinery at work (releases to the central list, neighbour
//! steals), and the fast-path hit rate each thread still enjoys.

use std::collections::VecDeque;

use mallacc_tcmalloc::{TcMalloc, TcMallocConfig};

fn main() {
    const MESSAGES: usize = 40_000;
    const IN_FLIGHT: usize = 64;
    const MSG_SIZE: u64 = 128;

    println!(
        "{:>8} {:>10} {:>12} {:>9} {:>8} {:>10}",
        "threads", "OS pages", "fast hits", "refills", "steals", "releases"
    );
    for threads in [2usize, 4, 8] {
        let mut a = TcMalloc::with_threads(TcMallocConfig::default(), threads);
        let mut queue: VecDeque<u64> = VecDeque::new();
        for i in 0..MESSAGES {
            // Round-robin producers; the "last" thread consumes.
            let producer = i % (threads - 1);
            let consumer = threads - 1;
            queue.push_back(a.malloc_on(producer, MSG_SIZE).ptr);
            if queue.len() > IN_FLIGHT {
                let p = queue.pop_front().expect("queue non-empty");
                a.free_on(consumer, p, true);
            }
        }
        for p in queue.drain(..) {
            a.free_on(threads - 1, p, true);
        }
        assert_eq!(a.live_blocks(), 0, "everything freed");
        let s = a.stats();
        println!(
            "{:>8} {:>10} {:>12} {:>9} {:>8} {:>10}",
            threads,
            a.page_heap().stats().os_pages,
            s.fast_hits,
            s.central_refills,
            s.steals,
            s.list_releases,
        );
    }
    println!(
        "\nWithout migration, {MESSAGES} x {MSG_SIZE} B one-way messages \
         would demand ~{} pages; the central free list keeps the footprint \
         at a handful of OS grants regardless of thread count.",
        MESSAGES as u64 * MSG_SIZE / 8192
    );
}
