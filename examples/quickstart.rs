//! Quickstart: simulate TCMalloc's fast path with and without Mallacc.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds two simulated machines — a baseline Haswell-like core and the
//! same core with the Mallacc malloc cache — runs identical warm
//! malloc/free traffic on both, and reports per-call latencies, the malloc
//! cache's hit rates, and the accelerator's silicon cost.

use mallacc::{AreaEstimate, CallKind, MallocSim, Mode};

fn measure(mode: Mode) -> (MallocSim, f64, f64) {
    let mut sim = MallocSim::new(mode);
    // Warm the allocator, the simulated caches and the malloc cache with
    // malloc/free pairs over four size classes (like the paper's tp_small).
    for i in 0..400u64 {
        let r = sim.malloc(32 + (i % 4) * 32);
        sim.free(r.ptr, true);
    }
    sim.reset_totals();
    for i in 0..2_000u64 {
        let r = sim.malloc(32 + (i % 4) * 32);
        assert_eq!(
            r.kind,
            CallKind::MallocFast,
            "warm calls stay on the fast path"
        );
        sim.free(r.ptr, true);
    }
    let t = sim.totals();
    let malloc = t.malloc_cycles as f64 / t.malloc_calls as f64;
    let free = t.free_cycles as f64 / t.free_calls as f64;
    (sim, malloc, free)
}

fn main() {
    let (_, base_malloc, base_free) = measure(Mode::Baseline);
    let (accel_sim, acc_malloc, acc_free) = measure(Mode::mallacc_default());
    let (_, lim_malloc, _) = measure(Mode::limit_all());

    println!("warm fast-path latency (cycles/call):");
    println!("  baseline      malloc {base_malloc:5.1}   free {base_free:5.1}");
    println!("  mallacc       malloc {acc_malloc:5.1}   free {acc_free:5.1}");
    println!("  limit study   malloc {lim_malloc:5.1}");
    println!(
        "  malloc speedup: {:.1}% (paper: up to 50% on the fast path)",
        100.0 * (1.0 - acc_malloc / base_malloc)
    );

    let mc = accel_sim.malloc_cache().stats();
    let lookup_rate = mc.lookup_hits as f64 / (mc.lookup_hits + mc.lookup_misses) as f64;
    let pop_rate = mc.pop_hits as f64 / (mc.pop_hits + mc.pop_misses).max(1) as f64;
    println!("\nmalloc cache (16 entries):");
    println!("  mcszlookup hit rate {:5.1}%", 100.0 * lookup_rate);
    println!("  mchdpop    hit rate {:5.1}%", 100.0 * pop_rate);
    println!("  mcnxtprefetch issued {}", mc.prefetches);

    let area = AreaEstimate::for_entries(16);
    println!(
        "\nsilicon cost: {:.0} um2 total ({:.4}% of a Haswell core)",
        area.total_um2(),
        100.0 * area.core_fraction()
    );
}
