//! Trace tooling: generate, save, reload and replay allocation traces.
//!
//! ```sh
//! cargo run --release --example trace_tools [workload] [path]
//! ```
//!
//! Traces are the reproducibility unit of this repository: the same trace
//! replayed on two simulated machines is what makes a speedup claim valid.
//! This example generates a workload trace (default: `gauss_free`), writes
//! it to disk in the diffable text format, reads it back, verifies the
//! round trip, and replays it on the baseline and Mallacc machines of both
//! allocator substrates.

use mallacc::{MallocSim, Mode};
use mallacc_jemalloc::JeSim;
use mallacc_workloads::{from_text, resolve_or_list, to_text, SimBackend};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "gauss_free".to_string());
    let path = args.next().unwrap_or_else(|| {
        std::env::temp_dir()
            .join("mallacc_trace.txt")
            .display()
            .to_string()
    });

    let trace = resolve_or_list(&name).trace(3_000, 99);

    let text = to_text(&trace);
    std::fs::write(&path, &text)?;
    let reloaded = from_text(&std::fs::read_to_string(&path)?)?;
    assert_eq!(reloaded, trace, "round trip must be lossless");
    println!(
        "{name}: {} ops ({} mallocs) → {path} ({} bytes), round trip OK",
        trace.len(),
        trace.malloc_count(),
        text.len()
    );

    let report = |label: &str, sim: &mut dyn SimBackend| {
        reloaded.replay_on(sim); // warm
        let stats = reloaded.replay_on(sim);
        println!(
            "  {label:<22} mean malloc {:6.1} cyc   mean free {:6.1} cyc",
            stats.mean_malloc_cycles(),
            stats.free.mean()
        );
    };
    report("tcmalloc / baseline", &mut MallocSim::new(Mode::Baseline));
    report(
        "tcmalloc / mallacc",
        &mut MallocSim::new(Mode::mallacc_default()),
    );
    report("jemalloc / baseline", &mut JeSim::new(Mode::Baseline));
    report(
        "jemalloc / mallacc",
        &mut JeSim::new(Mode::mallacc_default()),
    );
    Ok(())
}
