//! The datacenter-tax argument, end to end.
//!
//! ```sh
//! cargo run --release --example datacenter_tax
//! ```
//!
//! The paper's introduction: malloc consumes ~7 % of all cycles fleet-wide
//! (Kanev et al.), so a sub-1 % full-program speedup from a tiny in-core
//! block is a big deal when multiplied across a fleet. This example runs
//! every macro workload on the baseline and Mallacc machines, reports
//! statistically-tested full-program speedups (the Table 2 methodology),
//! and projects a fleet-level saving at the published 6.9 % allocator-time
//! fraction.

use mallacc::{MallocSim, Mode};
use mallacc_stats::ttest;
use mallacc_workloads::MacroWorkload;

fn program_cycles(mode: Mode, w: &MacroWorkload, seed: u64) -> f64 {
    let mut sim = MallocSim::new(mode);
    w.trace(1_000, seed).replay(&mut sim);
    sim.reset_totals();
    w.trace(6_000, seed + 1).replay(&mut sim);
    sim.totals().program_cycles() as f64
}

fn main() {
    const TRIALS: u64 = 4;
    println!(
        "{:<18} {:>10} {:>9} {:>9}  verdict",
        "workload", "alloc frac", "speedup", "p-value"
    );
    let mut alloc_improvements = Vec::new();
    for w in MacroWorkload::all() {
        let mut speedups = Vec::new();
        for t in 0..TRIALS {
            let seed = 40 + t * 13;
            let base = program_cycles(Mode::Baseline, &w, seed);
            let accel = program_cycles(Mode::mallacc_default(), &w, seed);
            speedups.push(100.0 * (base - accel) / base);
        }
        let mean = speedups.iter().sum::<f64>() / TRIALS as f64;

        // Allocator-time fraction and improvement for the fleet projection.
        let mut sim = MallocSim::new(Mode::Baseline);
        w.trace(1_000, 40).replay(&mut sim);
        sim.reset_totals();
        let base_stats = w.trace(6_000, 41).replay(&mut sim);
        let mut sim = MallocSim::new(Mode::mallacc_default());
        w.trace(1_000, 40).replay(&mut sim);
        sim.reset_totals();
        let accel_stats = w.trace(6_000, 41).replay(&mut sim);
        let alloc_impr =
            1.0 - accel_stats.allocator_cycles() as f64 / base_stats.allocator_cycles() as f64;
        alloc_improvements.push(alloc_impr);

        let (p, verdict) = match ttest::one_sample(&speedups, 0.0) {
            Some(t) if t.significant_at(0.05) => (format!("{:.3}", t.p_greater), "significant"),
            Some(t) => (format!("{:.3}", t.p_greater), "noise-masked"),
            None => ("n/a".into(), "degenerate"),
        };
        println!(
            "{:<18} {:>9.1}% {:>8.2}% {:>9}  {}",
            w.name,
            100.0 * base_stats.totals.allocator_fraction(),
            mean,
            p,
            verdict
        );
    }
    let mean_alloc_impr = alloc_improvements.iter().sum::<f64>() / alloc_improvements.len() as f64;
    println!(
        "\nfleet projection: {:.0}% mean allocator-time improvement at the \
         WSC's 6.9% allocator share ≈ {:.2}% of all datacenter cycles \
         saved by a <1500 um2 block per core",
        100.0 * mean_alloc_impr,
        100.0 * mean_alloc_impr * 0.069
    );
}
