//! Golden snapshot for the `repro sample --smoke` report: the sampled-vs-
//! full error table for every macro workload, under the default cadence,
//! must be byte-identical on every run, on every host, and at every
//! `--jobs` value.
//!
//! Snapshots live in `tests/golden/`. When an intentional engine, plan or
//! workload change shifts the report, regenerate with
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test sample_golden
//! ```
//!
//! and review the diff like any other code change — unintentional drift
//! in the sampled CPI extrapolation fails CI.

use std::path::PathBuf;

use mallacc_bench::sample_cli::{sample_report, SampleArgs};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Compares `actual` against the named snapshot, regenerating it when
/// `UPDATE_GOLDEN` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {}: {e}\nrun UPDATE_GOLDEN=1 cargo test --test sample_golden",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "sampling drift against {}:\n--- expected ---\n{expected}\n--- actual ---\n{actual}\n\
         If this change is intentional, regenerate with UPDATE_GOLDEN=1.",
        path.display()
    );
}

fn smoke_args(jobs: usize) -> SampleArgs {
    SampleArgs {
        jobs,
        ..SampleArgs::default()
    }
}

#[test]
fn smoke_report_matches_snapshot_and_passes() {
    let (code, text) = sample_report(&smoke_args(1));
    assert_eq!(code, 0, "smoke sampling must pass on main:\n{text}");
    assert_golden("sample_smoke.txt", &text);
}

#[test]
fn jobs_value_does_not_change_a_byte() {
    let (c1, seq) = sample_report(&smoke_args(1));
    let (c4, par) = sample_report(&smoke_args(4));
    assert_eq!((c1, c4), (0, 0));
    assert_eq!(seq, par, "--jobs must not change the report");
}
