//! Golden-trace snapshot tests: the canonical fast-path malloc/free
//! kernels must produce byte-identical stall breakdowns and Chrome trace
//! JSON on every run, on every host, and at every `--jobs` value.
//!
//! Snapshots live in `tests/golden/`. When an intentional model change
//! shifts the attribution, regenerate them with
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test profile_golden
//! ```
//!
//! and review the diff like any other code change — the whole point is
//! that *unintentional* attribution drift fails CI.

use std::path::PathBuf;

use mallacc::Mode;
use mallacc_bench::profile_cli::{profile_report, ProfileArgs};
use mallacc_prof::chrome::{chrome_trace, validate_chrome_trace};
use mallacc_prof::report::{profile_fastpath, render_component_table, render_stall_table};

/// Kernel scale for the snapshots: small enough to run in milliseconds,
/// large enough that every fast-path component shows up.
const PAIRS: u64 = 32;
const WARMUP: u64 = 8;
const UOPS: usize = 48;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Compares `actual` against the named snapshot, regenerating it when
/// `UPDATE_GOLDEN` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {}: {e}\nrun UPDATE_GOLDEN=1 cargo test --test profile_golden",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "attribution drift against {}:\n--- expected ---\n{expected}\n--- actual ---\n{actual}\n\
         If this change is intentional, regenerate with UPDATE_GOLDEN=1.",
        path.display()
    );
}

#[test]
fn baseline_fastpath_stall_breakdown_matches_snapshot() {
    let (p, _) = profile_fastpath(Mode::Baseline, "baseline", PAIRS, WARMUP, 0);
    assert_golden("fastpath_baseline.txt", &render_stall_table(&p));
}

#[test]
fn mallacc_fastpath_stall_breakdown_matches_snapshot() {
    let (p, _) = profile_fastpath(Mode::mallacc_default(), "mallacc", PAIRS, WARMUP, 0);
    assert_golden("fastpath_mallacc.txt", &render_stall_table(&p));
}

#[test]
fn component_attribution_matches_snapshot() {
    let (base, _) = profile_fastpath(Mode::Baseline, "baseline", PAIRS, WARMUP, 0);
    let (mall, _) = profile_fastpath(Mode::mallacc_default(), "mallacc", PAIRS, WARMUP, 0);
    let (limit, _) = profile_fastpath(Mode::limit_all(), "limit", PAIRS, WARMUP, 0);
    assert_golden(
        "fastpath_components.txt",
        &render_component_table(&[&base, &mall, &limit]),
    );
}

#[test]
fn chrome_trace_json_matches_snapshot_and_schema() {
    let (_, base) = profile_fastpath(Mode::Baseline, "baseline", PAIRS, WARMUP, UOPS);
    let (_, mall) = profile_fastpath(Mode::mallacc_default(), "mallacc", PAIRS, WARMUP, UOPS);
    let doc = chrome_trace(&[&base, &mall], &["baseline", "mallacc"]);
    validate_chrome_trace(&doc).expect("snapshot trace must satisfy the schema");
    assert_golden("fastpath_trace.json", &doc.render_pretty());
}

#[test]
fn repeated_runs_are_byte_identical() {
    let run = || {
        let (p, prof) = profile_fastpath(Mode::mallacc_default(), "mallacc", PAIRS, WARMUP, UOPS);
        let trace = chrome_trace(&[&prof], &["mallacc"]);
        (render_stall_table(&p), trace.render())
    };
    assert_eq!(run(), run());
}

#[test]
fn jobs_value_does_not_change_a_byte() {
    let args = |jobs| ProfileArgs {
        pairs: PAIRS,
        warmup: WARMUP,
        mt_calls: 40,
        seed: 42,
        uops: 0,
        jobs,
        trace: None,
        json: None,
    };
    let (c1, seq) = profile_report(&args(1));
    let (c2, par) = profile_report(&args(3));
    assert_eq!((c1, c2), (0, 0));
    assert_eq!(seq, par, "--jobs must not change the report");
}
