//! Property suite over the fleet scenario engine: arrival determinism,
//! request/block conservation on arbitrary scenario parameters, and
//! byte-identical reports for every `--jobs` value.
//!
//! Scenario parameters come from the shared
//! [`mallacc_test_support::arb_fleet_params`] generator so this suite,
//! the unit tests and future suites draw from the same distribution.

use std::collections::HashMap;

use proptest::prelude::*;

use mallacc_bench::fleet_cli::{fleet_report, FleetArgs};
use mallacc_fleet::{Arrivals, Scenario};
use mallacc_test_support::{arb_fleet_params, FleetParams};
use mallacc_workloads::MtOp;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A fixed seed fully determines the arrival gap sequence, and the
    /// whole op stream built on top of it: two streams with identical
    /// parameters are equal op for op.
    #[test]
    fn arrivals_and_streams_are_deterministic(p in arb_fleet_params()) {
        let FleetParams { scenario, cores, requests, seed } = p;
        let s = Scenario::by_name(scenario).unwrap();

        let gaps_a: Vec<u32> = Arrivals::new(s.arrival, seed).take(64).collect();
        let gaps_b: Vec<u32> = Arrivals::new(s.arrival, seed).take(64).collect();
        prop_assert_eq!(gaps_a, gaps_b, "arrival gaps drifted for a fixed seed");

        let ops_a: Vec<_> = s.stream(cores, requests, seed).collect();
        let ops_b: Vec<_> = s.stream(cores, requests, seed).collect();
        prop_assert_eq!(ops_a, ops_b, "op stream drifted for a fixed seed");
    }

    /// Conservation on arbitrary parameters: every issued request
    /// retires, every malloc'd token is freed exactly once, and every
    /// emitted core index is in range.
    #[test]
    fn streams_conserve_requests_and_blocks(p in arb_fleet_params()) {
        let FleetParams { scenario, cores, requests, seed } = p;
        let s = Scenario::by_name(scenario).unwrap();
        let mut stream = s.stream(cores, requests, seed);
        let mut live: HashMap<u64, ()> = HashMap::new();
        for (core, op) in &mut stream {
            prop_assert!(core < cores, "core {core} out of range");
            match op {
                MtOp::Malloc { token, .. } => {
                    prop_assert!(live.insert(token, ()).is_none(), "token reused live");
                }
                MtOp::Free { token, .. } => {
                    prop_assert!(live.remove(&token).is_some(), "freed unknown token");
                }
                _ => {}
            }
        }
        prop_assert!(live.is_empty(), "leaked {} blocks", live.len());
        prop_assert_eq!(stream.requests_issued(), requests);
        prop_assert_eq!(stream.requests_retired(), requests);
    }
}

proptest! {
    // Each case runs four full multi-core simulations (2 cells × 2
    // modes, twice), so the volume stays low; the fixed-seed golden test
    // covers the smoke configuration exhaustively.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `--jobs` parallelism never changes a byte of the report, for
    /// arbitrary seeds and scenarios — the invariant the golden snapshot
    /// pins for one configuration, generalised.
    /// The core axis rides the generator's full range — including the
    /// wide 16/32-core draws of the lifted cap — so jobs-invariance is
    /// not a small-machine artefact.
    #[test]
    fn report_bytes_are_jobs_invariant(p in arb_fleet_params()) {
        let args = |jobs: usize| FleetArgs {
            scenarios: vec![p.scenario.to_string()],
            cores: Some(vec![1, p.cores.clamp(2, 32)]),
            strong_requests: p.requests.max(8),
            weak_requests_per_core: (p.requests / 2).max(4),
            seed: p.seed,
            jobs,
            ..FleetArgs::default()
        };
        let (c1, seq) = fleet_report(&args(1));
        let (c4, par) = fleet_report(&args(4));
        prop_assert_eq!((c1, c4), (0, 0));
        prop_assert_eq!(seq, par, "--jobs changed the report bytes");
    }
}
