//! Property suite over sampled execution: for arbitrary seeds ×
//! workloads × cadences, sampling never perturbs functional state, the
//! sampled clock stays inside the error the run itself claims (or the
//! fixed differential band), degenerate plans are the identity on the
//! full detailed run, and the `repro sample` report is byte-identical
//! for every `--jobs` value.
//!
//! Cadences come from the shared
//! [`mallacc_test_support::arb_sampling_plan`] generator, so this suite
//! draws from the same plan distribution as the generator's own unit
//! tests and the sweep-point strategies.

use proptest::prelude::*;

use mallacc::{MallocSim, Mode, SamplingPlan};
use mallacc_bench::sample_cli::{sample_report, SampleArgs};
use mallacc_stats::{mean_ci95, tol};
use mallacc_test_support::arb_sampling_plan;
use mallacc_workloads::{AnyWorkload, MacroWorkload};

/// One run of `workload` under `mode`, optionally sampled: attributed
/// cycles, execution stats, malloc/free call counts, and (when sampled)
/// the run's own CI95 over window CPIs.
struct RunOutcome {
    cycles: u64,
    stats: mallacc_ooo::CoreStats,
    malloc_calls: u64,
    free_calls: u64,
    ci95_rel: Option<f64>,
}

fn run_workload(
    workload: &MacroWorkload,
    mallocs: usize,
    seed: u64,
    mode: Mode,
    plan: Option<SamplingPlan>,
) -> RunOutcome {
    let trace = AnyWorkload::by_name(workload.name)
        .expect("macro workloads are always resolvable")
        .trace(mallocs, seed);
    let mut sim = MallocSim::new(mode);
    sim.set_sampling(plan);
    trace.replay(&mut sim);
    let ci95_rel = sim.sampling_report().map(|r| {
        let ci = mean_ci95(&r.window_cpis());
        ci.relative()
    });
    RunOutcome {
        cycles: sim.cpi_stack().total(),
        stats: sim.engine().stats(),
        malloc_calls: sim.totals().malloc_calls,
        free_calls: sim.totals().free_calls,
        ci95_rel,
    }
}

/// Strategy: a (workload, mode, mallocs, seed) tuple small enough that a
/// property case simulates in milliseconds even unoptimized.
fn arb_run() -> impl Strategy<Value = (usize, bool, usize, u64)> {
    let n = MacroWorkload::all().len();
    (0..n, any::<bool>(), 150usize..500, any::<u64>())
}

fn mode_of(accel: bool) -> Mode {
    if accel {
        Mode::mallacc_default()
    } else {
        Mode::Baseline
    }
}

/// Conditions an arbitrary generated plan into one whose error estimate
/// is statistically meaningful on a trace of `uops` µops: at least 96
/// warmup µops per window (below that the post-fast-forward pipeline
/// transient dominates the window) and at least ~6 measured windows (a
/// Student-t interval over fewer windows is too noisy to be a usable
/// error claim). The same conditioning the validation crate's
/// sampled-differential fuzzer applies to its drawn plans.
fn conditioned(plan: SamplingPlan, uops: u64) -> SamplingPlan {
    let warmup = plan.warmup_uops.max(96);
    let detailed = plan.detailed_uops.max(96);
    let window = warmup + detailed;
    let period = plan.period.max(window).min((uops / 6).max(window));
    SamplingPlan::new(warmup, detailed, period)
        .expect("conditioned plan keeps a non-empty window and period")
        .with_startup(plan.startup_uops.min(period))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sampling is a pure timing-fidelity axis: under *any* cadence —
    /// including aggressive ones whose timing error would be large —
    /// the µop mix, memory-op counts, branch outcomes and allocator
    /// call counts are bit-identical to the full detailed run.
    #[test]
    fn sampling_never_perturbs_functional_state(
        run in arb_run(),
        plan in arb_sampling_plan(),
    ) {
        let (w, accel, mallocs, seed) = run;
        let workload = &MacroWorkload::all()[w];
        let full = run_workload(workload, mallocs, seed, mode_of(accel), None);
        let sampled = run_workload(workload, mallocs, seed, mode_of(accel), Some(plan));
        prop_assert_eq!(full.stats, sampled.stats, "µop stats drifted under sampling");
        prop_assert_eq!(full.malloc_calls, sampled.malloc_calls);
        prop_assert_eq!(full.free_calls, sampled.free_calls);
    }

    /// A degenerate plan (warmup + window covers the whole period, so
    /// nothing is ever fast-forwarded) reproduces the full detailed run
    /// exactly — same clock, cycle for cycle. Every generated plan is
    /// collapsed to its degenerate counterpart; plans the generator
    /// already drew degenerate must also be exact as-is.
    #[test]
    fn degenerate_plans_reproduce_the_full_run_exactly(
        run in arb_run(),
        plan in arb_sampling_plan(),
    ) {
        let (w, accel, mallocs, seed) = run;
        let workload = &MacroWorkload::all()[w];
        let full = run_workload(workload, mallocs, seed, mode_of(accel), None);

        let degenerate = SamplingPlan::new(plan.warmup_uops, plan.period, plan.period)
            .expect("window and period stay non-zero");
        let run = run_workload(workload, mallocs, seed, mode_of(accel), Some(degenerate));
        prop_assert_eq!(full.cycles, run.cycles, "degenerate plan changed the clock");
        prop_assert_eq!(full.stats, run.stats);

        if plan.is_degenerate() {
            let as_is = run_workload(workload, mallocs, seed, mode_of(accel), Some(plan));
            prop_assert_eq!(full.cycles, as_is.cycles, "drawn degenerate plan changed the clock");
        }
    }

    /// The oracle-bounded accuracy property: under any statistically
    /// meaningful cadence, the sampled clock lands inside the fixed
    /// differential band (±10% + 64 cycles) **or** inside the error the
    /// sampled run itself claims via its window-CPI CI95. What must
    /// never happen is a miss the run did not predict.
    #[test]
    fn sampled_cpi_stays_inside_its_own_error_claim(
        run in arb_run(),
        plan in arb_sampling_plan(),
    ) {
        let (w, accel, mallocs, seed) = run;
        let workload = &MacroWorkload::all()[w];
        let mode = mode_of(accel);
        let full = run_workload(workload, mallocs, seed, mode, None);
        let plan = conditioned(plan, full.stats.uops);
        let sampled = run_workload(workload, mallocs, seed, mode, Some(plan));

        let error_pct = if full.cycles == 0 {
            0.0
        } else {
            100.0 * (sampled.cycles as f64 - full.cycles as f64) / full.cycles as f64
        };
        let in_band = tol::within_band(
            full.cycles as f64,
            sampled.cycles as f64,
            tol::SAMPLED_DIFF_REL_TOL,
            tol::SAMPLED_DIFF_ABS_TOL_CYCLES,
        );
        let within_ci = sampled
            .ci95_rel
            .is_some_and(|rel| error_pct.abs() <= 100.0 * rel);
        prop_assert!(
            in_band || within_ci,
            "unpredicted sampling error on {} ({mode:?}, mallocs={mallocs}, seed={seed}): \
             plan {} missed by {error_pct:+.2}% with ci95 ±{:.2}%",
            workload.name,
            plan.canonical_string(),
            100.0 * sampled.ci95_rel.unwrap_or(0.0),
        );
    }
}

proptest! {
    // Each case runs the full 2-mode report for one workload at two jobs
    // values; fewer cases keep the suite fast.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The `repro sample` report is a pure function of its arguments:
    /// re-running it changes nothing, and neither does the `--jobs`
    /// value — rows are computed as pure functions of their index, so
    /// parallel and sequential schedules must agree byte for byte.
    #[test]
    fn sample_reports_are_deterministic_and_jobs_invariant(
        w in 0..MacroWorkload::all().len(),
        mallocs in 200usize..600,
        seed in any::<u64>(),
    ) {
        let args = |jobs| SampleArgs {
            workloads: vec![MacroWorkload::all()[w].name.to_string()],
            mallocs,
            seed,
            jobs,
            ..SampleArgs::default()
        };
        let (code_seq, seq) = sample_report(&args(1));
        let (code_rerun, rerun) = sample_report(&args(1));
        let (code_par, par) = sample_report(&args(3));
        prop_assert_eq!(code_seq, code_rerun, "exit code drifted across reruns");
        prop_assert_eq!(&seq, &rerun, "report drifted across reruns");
        prop_assert_eq!(code_seq, code_par, "exit code depends on --jobs");
        prop_assert_eq!(&seq, &par, "--jobs changed a report byte");
    }
}
