//! Property suite over the validation subsystem itself: the differential
//! fuzz at acceptance scale (ten thousand seeded programs against the
//! executable reference spec, zero divergences), the metamorphic laws,
//! and the oracle's sensitivity to injected timing shifts.

use proptest::prelude::*;

use mallacc_validate::laws::{check_law, LawId};
use mallacc_validate::oracle::{run_kernel, Band, KernelId};
use mallacc_validate::program::{diff_program, fuzz_corpus, McProgram};

/// Differential-fuzz volume for the acceptance criterion below. Each of
/// the 2_500 proptest cases derives four program seeds, so a full run
/// replays at least 10_000 distinct programs (plus every guided mutant
/// the corpus driver appends elsewhere).
const CASES: u32 = 2_500;
const PROGRAMS_PER_CASE: u64 = 4;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// The model and the naive reference interpreter agree on every
    /// result and every piece of observable state, for every generated
    /// instruction program.
    #[test]
    fn model_conforms_to_the_reference_spec(seed in any::<u64>()) {
        for i in 0..PROGRAMS_PER_CASE {
            let s = seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let p = McProgram::generate(s);
            let out = diff_program(s, &p);
            prop_assert!(
                out.divergence.is_none(),
                "model diverged from spec: {:?}",
                out.divergence
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// More cache entries never lose lookup or pop hits on canonical,
    /// prefetch-free traces.
    #[test]
    fn entries_monotone_law_holds(seed in any::<u64>()) {
        let (_, v) = check_law(LawId::EntriesMonotone, seed);
        prop_assert!(v.is_none(), "{v:?}");
    }

    /// Removing every prefetch from a trace never improves the cache.
    #[test]
    fn prefetch_removal_law_holds(seed in any::<u64>()) {
        let (_, v) = check_law(LawId::PrefetchRemoval, seed);
        prop_assert!(v.is_none(), "{v:?}");
    }

    /// Adjacent same-cycle ops on different classes commute on
    /// eviction-free traces.
    #[test]
    fn independent_reorder_law_holds(seed in any::<u64>()) {
        let (_, v) = check_law(LawId::IndependentReorder, seed);
        prop_assert!(v.is_none(), "{v:?}");
    }

    /// Every oracle kernel stays inside its tolerance band at arbitrary
    /// scales, not just the two scales the unit tests pin.
    #[test]
    fn oracle_kernels_stay_in_band_at_arbitrary_scale(
        n in 500u64..6_000,
        kernel in 0usize..9,
    ) {
        let id = KernelId::all()[kernel];
        let o = run_kernel(id, n);
        prop_assert!(
            o.pass,
            "{} out of band at n={n}: expected {:.0}, simulated {} ({:+.2}%)",
            id.name(), o.expected, o.simulated, o.error_pct
        );
    }

    /// The band rejects a systematic one-cycle-per-op shift for every
    /// fast-path kernel at validation scale — the sensitivity that makes
    /// the oracle worth running (an injected commit-path bug costs
    /// exactly one cycle per µop). Kernels dominated by triple-digit miss
    /// penalties are excluded: there a single cycle per op sits below the
    /// 2% modeling-noise band by design, and the width-bound kernels are
    /// the ones that pin the commit path anyway.
    #[test]
    fn band_rejects_one_cycle_per_op_shifts(kernel in 0usize..9, up in any::<bool>()) {
        let id = KernelId::all()[kernel];
        let o = run_kernel(id, 2_000);
        let per_op = o.expected / o.n as f64;
        if per_op >= 1.0 / Band::table1().rel {
            return Ok(()); // one cycle per op is inside the noise band
        }
        let shift = if up { o.n as f64 } else { -(o.n as f64) };
        prop_assert!(
            !Band::table1().contains(o.expected, o.simulated as f64 + shift),
            "{}: a {:+.0}-cycle shift stayed in band",
            id.name(),
            shift
        );
    }
}

/// The corpus driver at a few hundred slots: zero divergences and full
/// coverage of every architectural event, merged deterministically.
#[test]
fn fuzz_corpus_converges_with_full_coverage() {
    let report = fuzz_corpus(0xC0FFEE, 400);
    assert!(
        report.divergences.is_empty(),
        "divergence: {:?}",
        report.divergences[0]
    );
    assert!(
        report.coverage.complete(),
        "missing events: {:?}",
        report.coverage.missing()
    );
    assert!(report.programs() >= 400);
}
