//! Golden snapshot for the `repro fleet --smoke` report: the full text
//! output — scaling curves, tail-latency tables and p99 knees for every
//! catalogue scenario — must be byte-identical on every run, on every
//! host, and at every `--jobs` value.
//!
//! Snapshots live in `tests/golden/`. When an intentional engine or
//! scenario change shifts the report, regenerate with
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test fleet_golden
//! ```
//!
//! and review the diff like any other code change — unintentional drift
//! in the traffic generators or the timing model fails CI.

use std::path::PathBuf;

use mallacc_bench::fleet_cli::{fleet_report, FleetArgs};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Compares `actual` against the named snapshot, regenerating it when
/// `UPDATE_GOLDEN` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {}: {e}\nrun UPDATE_GOLDEN=1 cargo test --test fleet_golden",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "fleet report drift against {}:\n--- expected ---\n{expected}\n--- actual ---\n{actual}\n\
         If this change is intentional, regenerate with UPDATE_GOLDEN=1.",
        path.display()
    );
}

fn smoke_args(jobs: usize) -> FleetArgs {
    let args: Vec<String> = ["--smoke", "--jobs", &jobs.to_string()]
        .iter()
        .map(|a| a.to_string())
        .collect();
    FleetArgs::parse(&args).unwrap()
}

#[test]
fn smoke_report_matches_snapshot() {
    let (code, text) = fleet_report(&smoke_args(1));
    assert_eq!(code, 0, "smoke fleet run must pass on main:\n{text}");
    assert_golden("fleet_smoke.txt", &text);
}

#[test]
fn jobs_value_does_not_change_a_byte() {
    let (c1, seq) = fleet_report(&smoke_args(1));
    let (c4, par) = fleet_report(&smoke_args(4));
    assert_eq!((c1, c4), (0, 0));
    assert_eq!(seq, par, "--jobs must not change the report");
}
