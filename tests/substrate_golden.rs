//! Golden snapshot for the `repro substrate --smoke` report: the
//! four-substrate Mallacc-vs-offload-vs-both head-to-head and the
//! per-substrate summary must be byte-identical on every run, on every
//! host, and at every `--jobs` value.
//!
//! Snapshots live in `tests/golden/`. When an intentional model or
//! generator change shifts the report, regenerate with
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test substrate_golden
//! ```
//!
//! and review the diff like any other code change — unintentional drift
//! in any substrate's fast-path timing fails CI.

use std::path::PathBuf;

use mallacc_bench::substrate_cli::{substrate_report, SubstrateArgs};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Compares `actual` against the named snapshot, regenerating it when
/// `UPDATE_GOLDEN` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {}: {e}\nrun UPDATE_GOLDEN=1 cargo test --test substrate_golden",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "substrate report drift against {}:\n--- expected ---\n{expected}\n--- actual ---\n{actual}\n\
         If this change is intentional, regenerate with UPDATE_GOLDEN=1.",
        path.display()
    );
}

fn smoke_args(jobs: usize) -> SubstrateArgs {
    let args: Vec<String> = ["--smoke", "--jobs", &jobs.to_string()]
        .iter()
        .map(|a| a.to_string())
        .collect();
    SubstrateArgs::parse(&args).unwrap()
}

#[test]
fn smoke_report_matches_snapshot() {
    let (code, text) = substrate_report(&smoke_args(1));
    assert_eq!(code, 0, "smoke substrate run must pass on main:\n{text}");
    assert_golden("substrate_smoke.txt", &text);
}

#[test]
fn jobs_value_does_not_change_a_byte() {
    let (c1, seq) = substrate_report(&smoke_args(1));
    let (c4, par) = substrate_report(&smoke_args(4));
    assert_eq!((c1, c4), (0, 0));
    assert_eq!(seq, par, "--jobs must not change the report");
}

#[test]
fn mallacc_wins_where_fast_paths_are_fat() {
    // The generality story in one assertion: the substrates whose fast
    // paths chase size-class tables and free lists (tcmalloc, jemalloc,
    // percpu) must show a positive mean Mallacc improvement; rpmalloc's
    // thin intrusive pop may sit at ~zero but stays inside the
    // probe-overhead bound enforced by the report's own verdict.
    let (code, text) = substrate_report(&smoke_args(1));
    assert_eq!(code, 0);
    let summary: Vec<&str> = text
        .lines()
        .skip_while(|l| !l.starts_with("== per-substrate summary"))
        .collect();
    for fat in ["tcmalloc", "jemalloc", "percpu"] {
        let row = summary
            .iter()
            .find(|l| l.starts_with(fat))
            .unwrap_or_else(|| panic!("no summary row for {fat}:\n{text}"));
        let mean: f64 = row
            .split_whitespace()
            .nth(2)
            .and_then(|v| v.trim_end_matches('%').parse().ok())
            .unwrap_or_else(|| panic!("unparseable row {row:?}"));
        assert!(mean > 0.0, "{fat} should gain from Mallacc:\n{text}");
    }
}
