//! Property suite over the allocation-offload subsystem: bulk differential
//! conformance of the helper-queue model against its reference
//! interpreter, heap bit-identity of the offload driver modes,
//! queue-conservation laws on arbitrary request streams, and byte-identical
//! `repro offload` reports for every `--jobs` value.

use proptest::prelude::*;

use mallacc::{MallocSim, Mode, OffloadConfig};
use mallacc_bench::cli::run_indexed;
use mallacc_bench::offload_cli::{offload_report, OffloadArgs};
use mallacc_offload::{OffloadQueue, RefOffloadQueue};

/// Bulk conformance at the scale the subsystem claims: ≥10k fuzzed
/// programs (queue differentials + heap-identity allocation programs)
/// through the shared `mallacc-validate` slot function, with zero
/// divergences. Slots are merged in index order, so the parallel
/// partitioning cannot change the aggregate.
#[test]
fn ten_thousand_fuzzed_programs_conform() {
    use mallacc_validate::{offload_fuzz_slot, OffloadFuzzReport};
    const SLOTS: u64 = 3_500; // 2 queue + 1 heap program per slot
    let mut report = OffloadFuzzReport::default();
    for slot in run_indexed(SLOTS, 4, |i| offload_fuzz_slot(42, i)) {
        report.merge(slot);
    }
    let programs = report.queue_programs + report.heap_programs;
    assert!(programs >= 10_000, "only {programs} programs");
    assert!(
        report.divergences.is_empty(),
        "{} divergences; first: {:?}",
        report.divergences.len(),
        report.divergences.first()
    );
}

/// Strategy for a queue configuration spanning depth, helper speed and
/// interface latencies.
fn arb_offload_config() -> impl Strategy<Value = OffloadConfig> {
    (1usize..=32, 0usize..4, 1u32..12, 1u32..12).prop_map(|(depth, ipc, deq, resp)| {
        let mut cfg = OffloadConfig::speedmalloc_default();
        cfg.queue_depth = depth;
        cfg.helper_ipc_milli = [250, 500, 800, 1000][ipc];
        cfg.dequeue_latency = deq;
        cfg.response_latency = resp;
        cfg
    })
}

/// Strategy for a request stream: per-request `(gap to previous, helper
/// service cycles)`.
fn arb_stream() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (Just(0u64), 1u64..150),
            2 => (0u64..40, 1u64..150),
            1 => (100u64..600, 1u64..150),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Step-for-step agreement between the incremental queue and the
    /// from-scratch reference interpreter on arbitrary streams.
    #[test]
    fn incremental_queue_matches_the_reference(
        cfg in arb_offload_config(),
        stream in arb_stream(),
    ) {
        let mut q = OffloadQueue::new(cfg);
        let mut r = RefOffloadQueue::new(cfg);
        let mut now = 0u64;
        for (step, &(gap, service)) in stream.iter().enumerate() {
            now += gap;
            let a = q.enqueue(now, service);
            let b = r.enqueue(now, service);
            prop_assert_eq!(a, b, "divergence at step {}", step);
        }
    }

    /// Queue-conservation laws: every enqueue is retired or still
    /// occupying a slot, occupancy never exceeds the configured depth,
    /// and the stall counters exactly account the per-step outcomes.
    #[test]
    fn queue_counters_conserve(
        cfg in arb_offload_config(),
        stream in arb_stream(),
    ) {
        let mut q = OffloadQueue::new(cfg);
        let mut now = 0u64;
        let (mut stall_sum, mut stall_events, mut busy) = (0u64, 0u64, 0u64);
        let mut last_ready = 0u64;
        for &(gap, service) in &stream {
            now += gap;
            let o = q.enqueue(now, service);
            prop_assert!(o.submitted_at == now + o.stall_cycles);
            prop_assert!(o.response_ready >= last_ready, "responses must stay in order");
            last_ready = o.response_ready;
            stall_sum += o.stall_cycles;
            stall_events += u64::from(o.stall_cycles > 0);
            busy += service;
        }
        let s = q.stats();
        prop_assert_eq!(s.enqueued, stream.len() as u64);
        prop_assert_eq!(s.enqueued, s.retired + q.occupancy() as u64);
        prop_assert_eq!(s.stall_cycles, stall_sum);
        prop_assert_eq!(s.queue_full_stalls, stall_events);
        prop_assert_eq!(s.busy_cycles, busy);
        prop_assert!(s.max_occupancy <= cfg.queue_depth);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Heap bit-identity on arbitrary allocation programs: the offload
    /// modes must return exactly the pointers, sizes, classes and sampler
    /// verdicts of the baseline — the helper core is timing-only.
    #[test]
    fn offload_modes_never_change_the_heap(
        cfg in arb_offload_config(),
        seed in any::<u64>(),
    ) {
        let mut sims = [
            MallocSim::new(Mode::Baseline),
            MallocSim::new(Mode::Offload(cfg)),
            MallocSim::new(Mode::offload_both()),
        ];
        let mut rng = proptest::TestRng::seed_from_u64(seed);
        let mut pool: Vec<u64> = Vec::new();
        for step in 0..150u32 {
            if pool.is_empty() || rng.below(10) < 6 {
                let size = 1 + rng.below(64 * 1024);
                let recs = sims.each_mut().map(|sim| sim.malloc(size));
                for r in &recs[1..] {
                    prop_assert_eq!(
                        (r.ptr, r.size, r.cls, r.sampled),
                        (recs[0].ptr, recs[0].size, recs[0].cls, recs[0].sampled),
                        "functional fork at malloc step {}", step
                    );
                }
                pool.push(recs[0].ptr);
            } else {
                let ptr = pool.swap_remove(rng.below(pool.len() as u64) as usize);
                let sized = rng.below(2) == 0;
                let recs = sims.each_mut().map(|sim| sim.free(ptr, sized));
                for r in &recs[1..] {
                    prop_assert_eq!(
                        (r.ptr, r.size, r.cls),
                        (recs[0].ptr, recs[0].size, recs[0].cls),
                        "functional fork at free step {}", step
                    );
                }
            }
        }
    }
}

proptest! {
    // Each case runs the full four-section report twice, so the volume
    // stays low; the fixed-seed golden test pins the smoke configuration.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// `--jobs` parallelism never changes a byte of the `repro offload`
    /// report, for arbitrary seeds, depths and core counts.
    #[test]
    fn report_bytes_are_jobs_invariant(
        seed in any::<u64>(),
        depth in 1usize..=16,
        wide in 0usize..2,
    ) {
        let args = |jobs: usize| OffloadArgs {
            workloads: vec!["tp_small".to_string(), "xapian.pages".to_string()],
            scenarios: vec!["rpc-fanout".to_string()],
            depths: vec![depth],
            cores: vec![1, if wide == 1 { 32 } else { 2 }],
            calls: 120,
            warmup: 30,
            requests: 16,
            seed,
            jobs,
            ..OffloadArgs::default()
        };
        let (c1, seq) = offload_report(&args(1));
        let (c4, par) = offload_report(&args(4));
        prop_assert_eq!((c1, c4), (0, 0));
        prop_assert_eq!(seq, par, "--jobs changed the report bytes");
    }
}
