//! Cross-crate integration tests: the headline claims of the paper must
//! hold end-to-end on the assembled simulator.

use mallacc::{AccelConfig, AreaEstimate, MallocSim, Mode};
use mallacc_workloads::{MacroWorkload, Microbenchmark};

fn allocator_cycles(mode: Mode, w: &MacroWorkload, seed: u64) -> f64 {
    let mut sim = MallocSim::new(mode);
    w.trace(600, seed).replay(&mut sim);
    sim.reset_totals();
    let s = w.trace(2_500, seed + 1).replay(&mut sim);
    s.allocator_cycles() as f64
}

#[test]
fn mallacc_improves_every_macro_workload() {
    for w in MacroWorkload::all() {
        let base = allocator_cycles(Mode::Baseline, &w, 3);
        let accel = allocator_cycles(Mode::Mallacc(AccelConfig::with_entries(32)), &w, 3);
        assert!(
            accel < base,
            "{}: mallacc {accel} !< baseline {base}",
            w.name
        );
    }
}

#[test]
fn limit_study_bounds_mallacc_on_macro_workloads() {
    for w in MacroWorkload::all() {
        let accel = allocator_cycles(Mode::Mallacc(AccelConfig::with_entries(32)), &w, 4);
        let limit = allocator_cycles(Mode::limit_all(), &w, 4);
        // The idealised machine is at least as fast (small tolerance for
        // second-order cache interactions).
        assert!(
            limit <= accel * 1.05,
            "{}: limit {limit} !<= mallacc {accel}",
            w.name
        );
    }
}

#[test]
fn average_allocator_improvement_is_paper_scale() {
    // Paper: 18% average allocator-time improvement, 28% limit (Fig. 13).
    let mut accel_sum = 0.0;
    let mut limit_sum = 0.0;
    let all = MacroWorkload::all();
    for w in &all {
        let base = allocator_cycles(Mode::Baseline, w, 5);
        accel_sum +=
            1.0 - allocator_cycles(Mode::Mallacc(AccelConfig::with_entries(32)), w, 5) / base;
        limit_sum += 1.0 - allocator_cycles(Mode::limit_all(), w, 5) / base;
    }
    let accel_avg = accel_sum / all.len() as f64;
    let limit_avg = limit_sum / all.len() as f64;
    assert!(
        (0.10..=0.45).contains(&accel_avg),
        "average Mallacc improvement {accel_avg} out of the paper's band"
    );
    assert!(
        limit_avg > accel_avg,
        "limit {limit_avg} must exceed Mallacc {accel_avg}"
    );
}

#[test]
fn tp_exhibits_prefetch_blocking_slowdown() {
    // §6.2: "The lone exception is tp ... causing the slowdown."
    let t = Microbenchmark::Tp.trace(2_500, 7);
    let mut base = MallocSim::new(Mode::Baseline);
    t.replay(&mut base);
    base.reset_totals();
    let b = t.replay(&mut base).totals.malloc_cycles;
    let mut accel = MallocSim::new(Mode::Mallacc(AccelConfig::with_entries(32)));
    t.replay(&mut accel);
    accel.reset_totals();
    let a = t.replay(&mut accel).totals.malloc_cycles;
    assert!(a > b, "tp should slow down under Mallacc: {b} → {a}");
}

#[test]
fn undersized_cache_slows_gaussian_benchmarks() {
    for m in [Microbenchmark::Gauss, Microbenchmark::GaussFree] {
        let t = m.trace(2_500, 8);
        let run = |mode: Mode| {
            let mut sim = MallocSim::new(mode);
            t.replay(&mut sim);
            sim.reset_totals();
            t.replay(&mut sim).totals.malloc_cycles
        };
        let base = run(Mode::Baseline);
        let tiny = run(Mode::Mallacc(AccelConfig::with_entries(2)));
        let big = run(Mode::Mallacc(AccelConfig::with_entries(16)));
        assert!(
            tiny > base,
            "{m}: 2-entry cache should thrash: {base} → {tiny}"
        );
        assert!(big < base, "{m}: 16-entry cache should win: {base} → {big}");
    }
}

#[test]
fn tp_small_inflects_at_four_entries() {
    let t = Microbenchmark::TpSmall.trace(2_000, 9);
    let run = |entries: usize| {
        let mut sim = MallocSim::new(Mode::Mallacc(AccelConfig::with_entries(entries)));
        t.replay(&mut sim);
        sim.reset_totals();
        t.replay(&mut sim).totals.malloc_cycles as f64
    };
    let at2 = run(2);
    let at4 = run(4);
    assert!(
        at4 < at2 * 0.9,
        "tp_small uses 4 classes; the jump must land at 4 entries ({at2} → {at4})"
    );
}

#[test]
fn functional_behaviour_is_mode_independent() {
    // The accelerator is a pure performance optimisation: every mode must
    // take the exact same allocator paths.
    let w = MacroWorkload::by_name("400.perlbench").unwrap();
    let t = w.trace(2_000, 10);
    let stats = |mode: Mode| {
        let mut sim = MallocSim::new(mode);
        t.replay(&mut sim);
        sim.allocator().stats()
    };
    let base = stats(Mode::Baseline);
    let accel = stats(Mode::mallacc_default());
    let limit = stats(Mode::limit_all());
    assert_eq!(base, accel);
    assert_eq!(base, limit);
}

#[test]
fn area_stays_under_paper_bound() {
    let a = AreaEstimate::for_entries(16);
    assert!(a.total_um2() < 1_500.0);
    assert!(a.core_fraction() < 0.0001);
}

#[test]
fn xapian_gets_the_largest_malloc_gains() {
    // Fig. 14: xapian sees > 40% malloc speedup; it should lead the suite.
    let w = MacroWorkload::by_name("xapian.abstracts").unwrap();
    let run = |mode: Mode| {
        let mut sim = MallocSim::new(mode);
        w.trace(600, 11).replay(&mut sim);
        sim.reset_totals();
        w.trace(2_500, 12).replay(&mut sim).totals.malloc_cycles as f64
    };
    let base = run(Mode::Baseline);
    let accel = run(Mode::Mallacc(AccelConfig::with_entries(32)));
    let gain = 1.0 - accel / base;
    assert!(
        gain > 0.35,
        "xapian malloc gain {gain} below the paper's >40% band"
    );
}
