//! Property-based tests over the design-space exploration subsystem:
//! Pareto-frontier correctness, memo-key stability, and the sweep
//! engine's determinism and memoisation contracts.

use proptest::prelude::*;

use mallacc_explore::{
    run_sweep, AccelKind, ConfigPoint, ParamGrid, RunScale, Substrate, SweepOptions,
};
use mallacc_stats::{dominates, knee_index, pareto_frontier};
use mallacc_test_support::{arb_config_point, arb_points};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every frontier point is non-dominated, and every excluded point is
    /// dominated by some frontier point — the frontier is exactly the
    /// non-dominated set.
    #[test]
    fn frontier_is_exactly_the_nondominated_set(points in arb_points(24)) {
        let frontier = pareto_frontier(&points);
        for &i in &frontier {
            prop_assert!(
                !points.iter().any(|&p| dominates(p, points[i])),
                "frontier point {i} is dominated"
            );
        }
        for i in 0..points.len() {
            if !frontier.contains(&i) {
                prop_assert!(
                    points.iter().any(|&p| dominates(p, points[i])),
                    "excluded point {i} is non-dominated"
                );
            }
        }
    }

    /// The frontier is minimal: no frontier point dominates another (so
    /// nothing on it is redundant), and it is sorted by ascending cost.
    #[test]
    fn frontier_is_minimal_and_cost_sorted(points in arb_points(24)) {
        let frontier = pareto_frontier(&points);
        for &a in &frontier {
            for &b in &frontier {
                prop_assert!(
                    !dominates(points[a], points[b]),
                    "frontier point {a} dominates frontier point {b}"
                );
            }
        }
        for w in frontier.windows(2) {
            prop_assert!(points[w[0]].0 <= points[w[1]].0, "frontier not cost-sorted");
        }
    }

    /// The knee always sits on the frontier.
    #[test]
    fn knee_is_on_the_frontier(points in arb_points(24)) {
        if let Some(knee) = knee_index(&points) {
            prop_assert!(pareto_frontier(&points).contains(&knee));
        } else {
            prop_assert!(points.is_empty(), "finite points must yield a knee");
        }
    }

    /// The memo key is a pure function of the configuration: hashing the
    /// same point twice gives the same key.
    #[test]
    fn memo_key_is_stable(point in arb_config_point()) {
        prop_assert_eq!(point.key(), point.clone().key());
        prop_assert_eq!(point.key_hex(), format!("{:016x}", point.key()));
    }

    /// Changing any single config axis changes the memo key (the canonical
    /// strings differ, and the hash separates them).
    #[test]
    fn memo_key_changes_with_every_axis(point in arb_config_point()) {
        let variants = vec![
            ConfigPoint { entries: if point.entries == 1 { 2 } else { point.entries - 1 }, ..point.clone() },
            ConfigPoint { extra_latency: point.extra_latency + 1, ..point.clone() },
            ConfigPoint { prefetch: !point.prefetch, ..point.clone() },
            ConfigPoint { index_opt: !point.index_opt, ..point.clone() },
            ConfigPoint { sampling: !point.sampling, ..point.clone() },
            ConfigPoint {
                substrate: {
                    // Rotate to the next substrate in canonical order.
                    let i = Substrate::ALL
                        .iter()
                        .position(|&s| s == point.substrate)
                        .expect("drawn substrate is canonical");
                    Substrate::ALL[(i + 1) % Substrate::ALL.len()]
                },
                ..point.clone()
            },
            ConfigPoint {
                workload: if point.workload == "tp" { "gauss".to_string() } else { "tp".to_string() },
                ..point.clone()
            },
            ConfigPoint { cores: point.cores + 1, ..point.clone() },
            ConfigPoint {
                accel: if point.accel == AccelKind::Mallacc { AccelKind::Offload } else { AccelKind::Mallacc },
                ..point.clone()
            },
            ConfigPoint { queue_depth: point.queue_depth + 1, ..point.clone() },
            ConfigPoint { seed: point.seed.wrapping_add(1), ..point.clone() },
            ConfigPoint { scale: RunScale { calls: point.scale.calls + 1, ..point.scale }, ..point.clone() },
            ConfigPoint { scale: RunScale { warmup: point.scale.warmup + 1, ..point.scale }, ..point.clone() },
        ];
        for v in variants {
            prop_assert_ne!(
                v.canonical_string(),
                point.canonical_string(),
                "axis change left the canonical string unchanged"
            );
            prop_assert_ne!(v.key(), point.key(), "axis change left the key unchanged");
        }
    }
}

fn tiny_grid() -> ParamGrid {
    ParamGrid {
        entries: vec![4, 16],
        substrates: Substrate::ALL.to_vec(),
        workloads: vec!["tp_small".to_string(), "xapian.pages".to_string()],
        scale: RunScale {
            calls: 240,
            warmup: 40,
        },
        ..ParamGrid::default()
    }
}

/// The acceptance criterion: a sweep's results are bit-identical whether
/// the engine runs on one host thread or eight.
#[test]
fn sweep_results_are_bit_identical_across_jobs() {
    let grid = tiny_grid();
    let run = |jobs| {
        run_sweep(
            &grid,
            &SweepOptions {
                jobs,
                memo_path: None,
            },
        )
        .expect("sweep runs")
    };
    let serial = run(1);
    let parallel = run(8);
    assert_eq!(serial.points, parallel.points);
    assert_eq!(serial.results, parallel.results);
    assert_eq!(serial.frontier, parallel.frontier);
    assert_eq!(serial.knee, parallel.knee);
}

/// The acceptance criterion: a second run over the same grid is served
/// entirely from the memo store and reproduces the same results.
#[test]
fn second_sweep_hits_the_memo_for_every_point() {
    let dir = std::env::temp_dir().join(format!("mallacc-explore-props-{}", std::process::id()));
    let opts = SweepOptions {
        jobs: 2,
        memo_path: Some(dir.join("memo.json")),
    };
    let grid = tiny_grid();
    let first = run_sweep(&grid, &opts).expect("first sweep runs");
    assert_eq!(first.memo_hits, 0, "cold store serves nothing");
    let second = run_sweep(&grid, &opts).expect("second sweep runs");
    assert_eq!(
        second.memo_hits,
        second.points.len(),
        "warm store serves every point"
    );
    assert_eq!(first.results, second.results);
    std::fs::remove_dir_all(&dir).ok();
}
