//! Differential testing of the functional allocator models: replay
//! identical seeded op streams through all four substrates — TCMalloc,
//! jemalloc, rpmalloc, and the per-CPU TCMalloc variant — and assert
//! they agree on everything the malloc contract pins down, while their
//! implementation-defined details (size rounding, address layout) stay
//! within documented slack.
//!
//! Three layers:
//!
//! 1. The original TCMalloc/jemalloc pairwise test, which checks the
//!    details the two table-driven allocators can be held to jointly
//!    (bin classification, rounding ceilings).
//! 2. A four-way sweep through the [`mallacc_substrate::Allocator`]
//!    trait: every substrate's outcome stream is replayed through the
//!    naive [`RefHeap`] reference interpreter (rounding, overlap,
//!    free-size recall), and all four must agree exactly on live-block
//!    counts with bytes-in-use inside the documented slack.
//! 3. Heap-identity replay: the same program on two fresh instances of
//!    the same substrate must produce byte-identical outcome streams —
//!    the determinism law every timing simulator above the functional
//!    models relies on.
//!
//! The point of the exercise: the Mallacc generality claim (§6.3 — the
//! malloc cache also accelerates other allocators) only means something
//! if all models implement the *same* allocator semantics.
//!
//! CI runs 64 cases per property; `DIFF_CASES=2500 cargo test --test
//! allocator_diff` raises that (2 500 cases × 4 substrates ≈ 10k fuzzed
//! programs per substrate pair for the full-scale differential gate).

use proptest::prelude::*;

use mallacc_jemalloc::JeMalloc;
use mallacc_stats::tol::{BYTES_IN_USE_SLACK, ROUNDING_SLACK};
use mallacc_substrate::{Allocator, AnyAllocator, SubstrateKind};
use mallacc_tcmalloc::TcMalloc;
use mallacc_test_support::{arb_diff_stream, DiffOp, RefHeap};

/// Cases per property: 64 in CI, overridable via `DIFF_CASES` for the
/// full-scale fuzzing gate.
fn diff_cases() -> u32 {
    std::env::var("DIFF_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// A live allocation as seen by both allocators.
#[derive(Debug, Clone, Copy)]
struct LivePair {
    requested: u64,
    tc_ptr: u64,
    tc_size: u64,
    je_ptr: u64,
    je_size: u64,
}

fn check_disjoint(live: &[LivePair], ptr: u64, size: u64, pick: fn(&LivePair) -> (u64, u64)) {
    for l in live {
        let (p, s) = pick(l);
        assert!(
            ptr + size <= p || p + s <= ptr,
            "overlap: [{ptr:#x},+{size}) vs [{p:#x},+{s})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(diff_cases()))]

    /// Functional agreement on identical streams: both allocators satisfy
    /// every request, never overlap live blocks, round every request up,
    /// stay within the documented per-request and aggregate slack, and
    /// agree exactly on live-block counts and small/large classification.
    #[test]
    fn tcmalloc_and_jemalloc_agree_on_identical_streams(ops in arb_diff_stream(150)) {
        let mut tc = TcMalloc::default();
        let mut je = JeMalloc::new();
        let mut live: Vec<LivePair> = Vec::new();

        for op in ops {
            match op {
                DiffOp::Malloc { size } => {
                    let t = tc.malloc(size);
                    let j = je.malloc(size);

                    prop_assert!(t.alloc_size >= size, "tcmalloc under-allocated");
                    prop_assert!(j.alloc_size >= size, "jemalloc under-allocated");
                    let ceiling = (size.max(16) as f64 * ROUNDING_SLACK).ceil() as u64;
                    prop_assert!(t.alloc_size <= ceiling.max(t.alloc_size.min(4096)),
                        "tcmalloc rounded {size} to {}", t.alloc_size);
                    prop_assert!(j.alloc_size <= ceiling.max(j.alloc_size.min(4096)),
                        "jemalloc rounded {size} to {}", j.alloc_size);

                    // Small/large classification agrees where the tables
                    // overlap: both serve <= 2048 B from bins (jemalloc's
                    // classic bins stop there; TCMalloc's go further) and
                    // neither bins anything above 256 KiB. The region in
                    // between is table-dependent by design.
                    if size <= 2_048 {
                        prop_assert!(t.cls.is_some() && j.bin.is_some(),
                            "small request {size} left the bins");
                    }
                    if size > 256 * 1024 {
                        prop_assert!(t.cls.is_none() && j.bin.is_none(),
                            "large request {size} served from bins");
                    }

                    check_disjoint(&live, t.ptr, t.alloc_size, |l| (l.tc_ptr, l.tc_size));
                    check_disjoint(&live, j.ptr, j.alloc_size, |l| (l.je_ptr, l.je_size));
                    live.push(LivePair {
                        requested: size,
                        tc_ptr: t.ptr,
                        tc_size: t.alloc_size,
                        je_ptr: j.ptr,
                        je_size: j.alloc_size,
                    });
                }
                DiffOp::Free { index, sized } if !live.is_empty() => {
                    let i = (index % live.len() as u64) as usize;
                    let l = live.swap_remove(i);
                    let tf = tc.free(l.tc_ptr, sized);
                    let jf = je.free(l.je_ptr, sized);
                    prop_assert_eq!(tf.alloc_size, l.tc_size, "tcmalloc forgot the size");
                    prop_assert_eq!(jf.alloc_size, l.je_size, "jemalloc forgot the size");
                }
                DiffOp::Free { .. } => {}
            }

            // Exact agreement on live counts, slack-bounded agreement on
            // bytes in use.
            prop_assert_eq!(tc.live_blocks(), live.len());
            prop_assert_eq!(je.live_blocks(), live.len());
            let tc_bytes: u64 = live.iter().map(|l| l.tc_size).sum();
            let je_bytes: u64 = live.iter().map(|l| l.je_size).sum();
            if tc_bytes.max(je_bytes) >= 1024 {
                let ratio = tc_bytes.max(je_bytes) as f64 / tc_bytes.min(je_bytes).max(1) as f64;
                prop_assert!(
                    ratio <= BYTES_IN_USE_SLACK,
                    "bytes-in-use diverged: tcmalloc {tc_bytes}, jemalloc {je_bytes}"
                );
            }
        }

        // Drain everything: both must return to empty.
        for l in live.drain(..) {
            tc.free(l.tc_ptr, true);
            je.free(l.je_ptr, true);
            let _ = l.requested;
        }
        prop_assert_eq!(tc.live_blocks(), 0);
        prop_assert_eq!(je.live_blocks(), 0);
    }

    /// Size-class monotonicity, on both allocators: rounding is a
    /// monotone non-decreasing function of the request, and repeated
    /// identical requests round identically.
    #[test]
    fn rounding_is_monotone_and_stable(raw_sizes in prop::collection::vec(1u64..300_000, 2..40)) {
        let mut sizes = raw_sizes;
        sizes.sort_unstable();
        let mut tc = TcMalloc::default();
        let mut je = JeMalloc::new();
        let mut prev_tc = 0u64;
        let mut prev_je = 0u64;
        for &size in &sizes {
            let t1 = tc.malloc(size).alloc_size;
            let j1 = je.malloc(size).alloc_size;
            let t2 = tc.malloc(size).alloc_size;
            let j2 = je.malloc(size).alloc_size;
            prop_assert_eq!(t1, t2, "tcmalloc rounding unstable at {}", size);
            prop_assert_eq!(j1, j2, "jemalloc rounding unstable at {}", size);
            prop_assert!(t1 >= prev_tc, "tcmalloc rounding not monotone at {size}");
            prop_assert!(j1 >= prev_je, "jemalloc rounding not monotone at {size}");
            prev_tc = t1;
            prev_je = j1;
        }
    }

    /// Four-way differential against the reference interpreter: every
    /// substrate's outcome stream satisfies the naive malloc contract
    /// (rounding, overlap-freedom, free-size recall), all four agree
    /// exactly on live-block counts at every step, and their bytes in
    /// use stay within the documented cross-allocator slack.
    #[test]
    fn all_substrates_obey_the_reference_interpreter(ops in arb_diff_stream(120)) {
        let mut subs: Vec<(AnyAllocator, RefHeap)> = SubstrateKind::ALL
            .iter()
            .map(|&k| (AnyAllocator::new(k), RefHeap::new()))
            .collect();

        for op in ops {
            match op {
                DiffOp::Malloc { size } => {
                    for (alloc, heap) in &mut subs {
                        let kind = alloc.kind();
                        let a = alloc.alloc(size);
                        prop_assert_eq!(a.requested, size, "{:?} mislabeled the request", kind);
                        if let Err(e) = heap.on_alloc(&a) {
                            return Err(TestCaseError::fail(format!("{kind:?}: {e}")));
                        }
                        prop_assert_eq!(
                            alloc.live_blocks(),
                            heap.live_blocks(),
                            "{:?} live-block count diverged from its own stream", kind
                        );
                    }
                }
                DiffOp::Free { index, sized } => {
                    // All four heaps hold the same number of live blocks,
                    // so the selector picks the i-th block of each — the
                    // same logical victim everywhere.
                    for (alloc, heap) in &mut subs {
                        let kind = alloc.kind();
                        let Some(victim) = heap.pick(index) else { continue };
                        let f = alloc.dealloc(victim, sized);
                        prop_assert_eq!(f.ptr, victim, "{:?} freed the wrong block", kind);
                        if let Err(e) = heap.on_free(&f) {
                            return Err(TestCaseError::fail(format!("{kind:?}: {e}")));
                        }
                    }
                }
            }

            // Cross-substrate agreement after every op.
            let counts: Vec<usize> = subs.iter().map(|(_, h)| h.live_blocks()).collect();
            prop_assert!(
                counts.windows(2).all(|w| w[0] == w[1]),
                "live-block counts diverged: {counts:?}"
            );
            let bytes: Vec<u64> = subs.iter().map(|(_, h)| h.bytes_in_use()).collect();
            let (min, max) = (
                *bytes.iter().min().expect("four substrates"),
                *bytes.iter().max().expect("four substrates"),
            );
            if max >= 1024 {
                let ratio = max as f64 / min.max(1) as f64;
                prop_assert!(
                    ratio <= BYTES_IN_USE_SLACK,
                    "bytes-in-use diverged across substrates: {bytes:?}"
                );
            }
        }

        // Drain everything: all four must return to empty.
        for (alloc, heap) in &mut subs {
            while let Some(victim) = heap.pick(0) {
                let f = alloc.dealloc(victim, true);
                if let Err(e) = heap.on_free(&f) {
                    return Err(TestCaseError::fail(format!("{:?}: {e}", alloc.kind())));
                }
            }
            prop_assert_eq!(alloc.live_blocks(), 0, "{:?} leaked blocks", alloc.kind());
        }
    }

    /// Heap-identity replay: the same program on two fresh instances of
    /// the same substrate produces byte-identical outcome streams. The
    /// timing simulators replay warm-up and measurement traces on the
    /// assumption that the functional heap underneath is a pure function
    /// of the op stream; this is that assumption, stated as a law.
    #[test]
    fn substrate_replay_is_heap_identical(ops in arb_diff_stream(120)) {
        for kind in SubstrateKind::ALL {
            let mut first = AnyAllocator::new(kind);
            let mut second = AnyAllocator::new(kind);
            let mut heap = RefHeap::new();
            for &op in &ops {
                match op {
                    DiffOp::Malloc { size } => {
                        let a1 = first.alloc(size);
                        let a2 = second.alloc(size);
                        prop_assert_eq!(a1, a2, "{:?} alloc diverged on replay", kind);
                        if let Err(e) = heap.on_alloc(&a1) {
                            return Err(TestCaseError::fail(format!("{kind:?}: {e}")));
                        }
                    }
                    DiffOp::Free { index, sized } => {
                        let Some(victim) = heap.pick(index) else { continue };
                        let f1 = first.dealloc(victim, sized);
                        let f2 = second.dealloc(victim, sized);
                        prop_assert_eq!(f1, f2, "{:?} free diverged on replay", kind);
                        if let Err(e) = heap.on_free(&f1) {
                            return Err(TestCaseError::fail(format!("{kind:?}: {e}")));
                        }
                    }
                }
            }
        }
    }
}
