//! Differential testing of the two functional allocator models: replay
//! identical seeded op streams through mallacc-tcmalloc and
//! mallacc-jemalloc and assert they agree on everything the malloc
//! contract pins down, while their implementation-defined details (size
//! rounding, address layout) stay within documented slack.
//!
//! The point of the exercise: the Mallacc generality claim (§6.3 — the
//! malloc cache also accelerates jemalloc) only means something if both
//! models implement the *same* allocator semantics.

use proptest::prelude::*;

use mallacc_jemalloc::JeMalloc;
use mallacc_stats::tol::{BYTES_IN_USE_SLACK, ROUNDING_SLACK};
use mallacc_tcmalloc::TcMalloc;
use mallacc_test_support::{arb_diff_stream, DiffOp};

/// A live allocation as seen by both allocators.
#[derive(Debug, Clone, Copy)]
struct LivePair {
    requested: u64,
    tc_ptr: u64,
    tc_size: u64,
    je_ptr: u64,
    je_size: u64,
}

fn check_disjoint(live: &[LivePair], ptr: u64, size: u64, pick: fn(&LivePair) -> (u64, u64)) {
    for l in live {
        let (p, s) = pick(l);
        assert!(
            ptr + size <= p || p + s <= ptr,
            "overlap: [{ptr:#x},+{size}) vs [{p:#x},+{s})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Functional agreement on identical streams: both allocators satisfy
    /// every request, never overlap live blocks, round every request up,
    /// stay within the documented per-request and aggregate slack, and
    /// agree exactly on live-block counts and small/large classification.
    #[test]
    fn tcmalloc_and_jemalloc_agree_on_identical_streams(ops in arb_diff_stream(150)) {
        let mut tc = TcMalloc::default();
        let mut je = JeMalloc::new();
        let mut live: Vec<LivePair> = Vec::new();

        for op in ops {
            match op {
                DiffOp::Malloc { size } => {
                    let t = tc.malloc(size);
                    let j = je.malloc(size);

                    prop_assert!(t.alloc_size >= size, "tcmalloc under-allocated");
                    prop_assert!(j.alloc_size >= size, "jemalloc under-allocated");
                    let ceiling = (size.max(16) as f64 * ROUNDING_SLACK).ceil() as u64;
                    prop_assert!(t.alloc_size <= ceiling.max(t.alloc_size.min(4096)),
                        "tcmalloc rounded {size} to {}", t.alloc_size);
                    prop_assert!(j.alloc_size <= ceiling.max(j.alloc_size.min(4096)),
                        "jemalloc rounded {size} to {}", j.alloc_size);

                    // Small/large classification agrees where the tables
                    // overlap: both serve <= 2048 B from bins (jemalloc's
                    // classic bins stop there; TCMalloc's go further) and
                    // neither bins anything above 256 KiB. The region in
                    // between is table-dependent by design.
                    if size <= 2_048 {
                        prop_assert!(t.cls.is_some() && j.bin.is_some(),
                            "small request {size} left the bins");
                    }
                    if size > 256 * 1024 {
                        prop_assert!(t.cls.is_none() && j.bin.is_none(),
                            "large request {size} served from bins");
                    }

                    check_disjoint(&live, t.ptr, t.alloc_size, |l| (l.tc_ptr, l.tc_size));
                    check_disjoint(&live, j.ptr, j.alloc_size, |l| (l.je_ptr, l.je_size));
                    live.push(LivePair {
                        requested: size,
                        tc_ptr: t.ptr,
                        tc_size: t.alloc_size,
                        je_ptr: j.ptr,
                        je_size: j.alloc_size,
                    });
                }
                DiffOp::Free { index, sized } if !live.is_empty() => {
                    let i = (index % live.len() as u64) as usize;
                    let l = live.swap_remove(i);
                    let tf = tc.free(l.tc_ptr, sized);
                    let jf = je.free(l.je_ptr, sized);
                    prop_assert_eq!(tf.alloc_size, l.tc_size, "tcmalloc forgot the size");
                    prop_assert_eq!(jf.alloc_size, l.je_size, "jemalloc forgot the size");
                }
                DiffOp::Free { .. } => {}
            }

            // Exact agreement on live counts, slack-bounded agreement on
            // bytes in use.
            prop_assert_eq!(tc.live_blocks(), live.len());
            prop_assert_eq!(je.live_blocks(), live.len());
            let tc_bytes: u64 = live.iter().map(|l| l.tc_size).sum();
            let je_bytes: u64 = live.iter().map(|l| l.je_size).sum();
            if tc_bytes.max(je_bytes) >= 1024 {
                let ratio = tc_bytes.max(je_bytes) as f64 / tc_bytes.min(je_bytes).max(1) as f64;
                prop_assert!(
                    ratio <= BYTES_IN_USE_SLACK,
                    "bytes-in-use diverged: tcmalloc {tc_bytes}, jemalloc {je_bytes}"
                );
            }
        }

        // Drain everything: both must return to empty.
        for l in live.drain(..) {
            tc.free(l.tc_ptr, true);
            je.free(l.je_ptr, true);
            let _ = l.requested;
        }
        prop_assert_eq!(tc.live_blocks(), 0);
        prop_assert_eq!(je.live_blocks(), 0);
    }

    /// Size-class monotonicity, on both allocators: rounding is a
    /// monotone non-decreasing function of the request, and repeated
    /// identical requests round identically.
    #[test]
    fn rounding_is_monotone_and_stable(raw_sizes in prop::collection::vec(1u64..300_000, 2..40)) {
        let mut sizes = raw_sizes;
        sizes.sort_unstable();
        let mut tc = TcMalloc::default();
        let mut je = JeMalloc::new();
        let mut prev_tc = 0u64;
        let mut prev_je = 0u64;
        for &size in &sizes {
            let t1 = tc.malloc(size).alloc_size;
            let j1 = je.malloc(size).alloc_size;
            let t2 = tc.malloc(size).alloc_size;
            let j2 = je.malloc(size).alloc_size;
            prop_assert_eq!(t1, t2, "tcmalloc rounding unstable at {}", size);
            prop_assert_eq!(j1, j2, "jemalloc rounding unstable at {}", size);
            prop_assert!(t1 >= prev_tc, "tcmalloc rounding not monotone at {size}");
            prop_assert!(j1 >= prev_je, "jemalloc rounding not monotone at {size}");
            prev_tc = t1;
            prev_je = j1;
        }
    }
}
