//! State-warmth checks for sampled execution: after fast-forwarding
//! through most of a workload trace, the *functional* machine state —
//! the tcmalloc heap, the malloc-cache contents, and the branch
//! counters — must be bit-identical to what full detailed execution
//! leaves behind. Fast-forwarding only skips timing, never effects.
//!
//! The cache hierarchy is the one deliberate exception: fast-forwarded
//! µops still probe and fill the caches (that is what keeps the next
//! measured window honest), but timing-side accesses such as store
//! completion are elided, so its state is required to be *warm* — hit
//! rates within a few points of the full run — not bit-identical.

use mallacc::{MallocSim, Mode, SamplingPlan};
use mallacc_tcmalloc::TcMalloc;
use mallacc_workloads::AnyWorkload;

/// An aggressive cadence: 128-µop warmup, 256-µop window, 4096-µop
/// period — roughly 90 % of steady-state µops fast-forwarded, so any
/// state the fast-forward path failed to maintain would be glaring.
fn aggressive_plan() -> SamplingPlan {
    SamplingPlan::new(128, 256, 4_096)
        .expect("static plan is valid")
        .with_startup(512)
}

/// Replays `workload` through a fresh simulator, full or sampled.
fn replay(workload: &str, mode: Mode, plan: Option<SamplingPlan>) -> MallocSim {
    let trace = AnyWorkload::by_name(workload)
        .expect("test workloads exist")
        .trace(2_000, 7);
    let mut sim = MallocSim::new(mode);
    sim.set_sampling(plan);
    trace.replay(&mut sim);
    sim
}

/// Every piece of functional heap state the allocator exposes, pulled
/// into one comparable value: global stats, live/free block counts, the
/// thread-cache byte total, and the exact contents of every per-class
/// free list (head identity and order matter — the malloc-cache list
/// heads mirror them).
fn heap_fingerprint(alloc: &TcMalloc) -> (mallacc_tcmalloc::AllocStats, usize, u64, Vec<String>) {
    let lists = alloc
        .size_classes()
        .iter()
        .map(|(cls, _)| {
            format!(
                "{cls}: tc={:?} transfer={} central={} carved={} live={} free={}",
                alloc.free_list_blocks_on(0, cls),
                alloc.transfer_len(cls),
                alloc.central_len(cls),
                alloc.carved_objects(cls),
                alloc.live_blocks_of(cls),
                alloc.free_blocks_of(cls),
            )
        })
        .collect();
    (
        alloc.stats(),
        alloc.live_blocks(),
        alloc.thread_cache_bytes(),
        lists,
    )
}

#[test]
fn heap_state_after_fast_forward_is_bit_identical() {
    for workload in ["400.perlbench", "masstree.wcol1", "xapian.pages"] {
        let full = replay(workload, Mode::Baseline, None);
        let sampled = replay(workload, Mode::Baseline, Some(aggressive_plan()));

        let report = sampled.sampling_report().expect("sampling installed");
        assert!(
            report.ff_uops > sampled.engine().stats().uops / 2,
            "{workload}: plan too tame — most µops must be fast-forwarded \
             for this check to mean anything"
        );
        assert_eq!(
            heap_fingerprint(full.allocator()),
            heap_fingerprint(sampled.allocator()),
            "{workload}: heap state diverged across fast-forward"
        );
    }
}

#[test]
fn malloc_cache_state_after_fast_forward_is_bit_identical() {
    for workload in ["465.tonto", "masstree.same"] {
        let full = replay(workload, Mode::mallacc_default(), None);
        let sampled = replay(workload, Mode::mallacc_default(), Some(aggressive_plan()));

        // `blocked_cycles` is a timing statistic (stall cycles charged
        // while a popped next pointer was still in flight), so it is
        // allowed to differ between the two clocks; every functional
        // counter — hits, misses, inserts, prefetches — must not.
        let functional = |sim: &MallocSim| {
            let mut s = sim.malloc_cache().stats();
            s.blocked_cycles = 0;
            s
        };
        assert_eq!(
            functional(&full),
            functional(&sampled),
            "{workload}: malloc-cache hit/miss history diverged across fast-forward"
        );
        assert_eq!(
            full.malloc_cache().occupancy(),
            sampled.malloc_cache().occupancy(),
            "{workload}: malloc-cache occupancy diverged across fast-forward"
        );
    }
}

#[test]
fn branch_history_after_fast_forward_is_bit_identical() {
    for workload in ["471.omnetpp", "xapian.abstracts"] {
        let full = replay(workload, Mode::Baseline, None);
        let sampled = replay(workload, Mode::Baseline, Some(aggressive_plan()));
        let (f, s) = (full.engine().stats(), sampled.engine().stats());
        assert!(f.branches > 0, "{workload}: trace must exercise branches");
        assert_eq!(
            (f.branches, f.mispredicts),
            (s.branches, s.mispredicts),
            "{workload}: branch history diverged across fast-forward"
        );
    }
}

#[test]
fn caches_stay_warm_across_fast_forward() {
    for workload in ["483.xalancbmk", "masstree.wcol1"] {
        let full = replay(workload, Mode::Baseline, None);
        let sampled = replay(workload, Mode::Baseline, Some(aggressive_plan()));

        let (fl1, fl2, fl3) = full.memory().stats();
        let (sl1, sl2, sl3) = sampled.memory().stats();
        for (level, f, s) in [("L1", fl1, sl1), ("L2", fl2, sl2), ("L3", fl3, sl3)] {
            assert!(
                s.hits + s.misses > 0,
                "{workload}: {level} never touched under sampling — fast-forward \
                 stopped warming the hierarchy"
            );
            // Warm, not bit-identical: the fast-forward path elides
            // timing-side accesses (store completion), so rates may
            // drift a few points — never collapse.
            let drift = (f.hit_rate() - s.hit_rate()).abs();
            assert!(
                drift < 0.05,
                "{workload}: {level} hit rate drifted {:.1} points across \
                 fast-forward (full {:.3}, sampled {:.3})",
                100.0 * drift,
                f.hit_rate(),
                s.hit_rate()
            );
        }
    }
}
