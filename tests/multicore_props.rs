//! Property-based tests over the cross-thread invariants the multi-core
//! subsystem leans on.
//!
//! The multi-core timing layer replays per-core streams against state the
//! serial functional phase captured, so its correctness rests on two
//! allocator invariants holding for *every* interleaving of cross-thread
//! traffic:
//!
//! 1. **No double residency** — a block is never on two thread-cache free
//!    lists at once, however it migrates (remote free, release to the
//!    transfer cache, central-list refill, steal).
//! 2. **Conservation** — the remote free → transfer cache → central list
//!    flow never creates or loses blocks: for every size class, the
//!    objects carved out of spans equal the live blocks plus the free
//!    blocks across all tiers.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;

use mallacc::Mode;
use mallacc_multicore::{MtRunResult, MulticoreSim};
use mallacc_tcmalloc::{ClassId, TcMalloc};
use mallacc_test_support::arb_cross_thread_ops;
use mallacc_workloads::{MtOp, MtTrace};

const THREADS: usize = 4;

/// Checks both cross-thread invariants for every class seen so far.
fn check_cross_thread_invariants(
    a: &TcMalloc,
    classes: &HashSet<ClassId>,
) -> Result<(), TestCaseError> {
    for &cls in classes {
        // 1. No block sits on two thread caches (or twice on one) at once.
        let mut seen: HashSet<u64> = HashSet::new();
        for tid in 0..a.num_threads() {
            for block in a.free_list_blocks_on(tid, cls) {
                prop_assert!(
                    seen.insert(block),
                    "block {block:#x} of {cls:?} is on two thread caches"
                );
            }
        }
        // 2. carved = live + free across thread caches, transfer, central.
        prop_assert_eq!(
            a.carved_objects(cls) as usize,
            a.live_blocks_of(cls) + a.free_blocks_of(cls),
            "class {:?} population not conserved",
            cls
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary cross-thread churn — every allocation may be freed from
    /// any *other* thread — never puts a block on two thread caches and
    /// never breaks per-class conservation, at any intermediate state.
    #[test]
    fn cross_thread_churn_preserves_residency_and_conservation(
        ops in arb_cross_thread_ops(THREADS, 120)
    ) {
        let mut a = TcMalloc::with_threads(Default::default(), THREADS);
        let mut live: Vec<u64> = Vec::new();
        let mut classes: HashSet<ClassId> = HashSet::new();
        for (tid, size, sel, do_free, sized) in ops {
            let o = a.malloc_on(tid, size);
            if let Some(cls) = o.cls {
                classes.insert(cls);
            }
            live.push(o.ptr);
            if do_free {
                let i = sel as usize % live.len();
                let p = live.swap_remove(i);
                // Free from a different thread than the one that just
                // allocated — the migration path under test.
                let victim = (tid + 1 + sel as usize % (THREADS - 1)) % THREADS;
                a.free_on(victim, p, sized);
            }
            check_cross_thread_invariants(&a, &classes)?;
        }
    }

    /// The producer–consumer ring drains completely: every remote free
    /// funnels back through the transfer cache and central list without
    /// losing a block, and at the end the entire carved population of
    /// every class is free again.
    #[test]
    fn ring_remote_frees_conserve_blocks_through_drain(
        cores in 1usize..5,
        calls in 1usize..50,
        seed in any::<u64>(),
    ) {
        let trace = MtTrace::producer_consumer(cores, calls, seed);
        let mut a = TcMalloc::with_threads(Default::default(), cores);
        let mut addr_of: HashMap<u64, u64> = HashMap::new();
        let mut classes: HashSet<ClassId> = HashSet::new();
        for &(core, op) in trace.ops() {
            match op {
                MtOp::Malloc { size, token } => {
                    let o = a.malloc_on(core, size);
                    if let Some(cls) = o.cls {
                        classes.insert(cls);
                    }
                    prop_assert!(addr_of.insert(token, o.ptr).is_none());
                }
                MtOp::Free { token, sized } => {
                    let p = addr_of.remove(&token).expect("trace frees known tokens");
                    a.free_on(core, p, sized);
                }
                _ => {}
            }
            check_cross_thread_invariants(&a, &classes)?;
        }
        prop_assert_eq!(a.live_blocks(), 0, "ring must drain fully");
        for &cls in &classes {
            prop_assert_eq!(a.free_blocks_of(cls) as u64, a.carved_objects(cls));
        }
        if cores > 1 {
            prop_assert!(a.stats().remote_frees > 0, "multi-core ring frees remotely");
        }
    }

    /// Ring traces are well-formed for any parameters: every token is
    /// freed exactly once after its malloc, and nothing leaks.
    #[test]
    fn ring_traces_free_every_token_exactly_once(
        cores in 1usize..9,
        calls in 0usize..80,
        seed in any::<u64>(),
    ) {
        let trace = MtTrace::producer_consumer(cores, calls, seed);
        let mut live: HashSet<u64> = HashSet::new();
        for &(_, op) in trace.ops() {
            match op {
                MtOp::Malloc { token, .. } => prop_assert!(live.insert(token)),
                MtOp::Free { token, .. } => prop_assert!(live.remove(&token)),
                _ => {}
            }
        }
        prop_assert!(live.is_empty(), "{} blocks leaked", live.len());
        prop_assert_eq!(trace.malloc_count(), cores * calls);
    }

    /// The two-phase multi-core replay is deterministic for any trace
    /// shape: identical runs give bit-identical timing, epoch counts,
    /// shared-L3 traffic and per-core statistics.
    #[test]
    fn multicore_replay_is_deterministic(
        cores in 1usize..5,
        calls in 4usize..32,
        seed in any::<u64>(),
    ) {
        let trace = MtTrace::producer_consumer(cores, calls, seed);
        let sim = MulticoreSim::new(Mode::mallacc_default(), cores);
        let sig = |r: &MtRunResult| {
            (
                r.cycles_per_call().to_bits(),
                r.makespan_cycles(),
                r.epochs,
                r.shared_l3_accesses,
                r.steal_invalidates,
                r.per_core
                    .iter()
                    .map(|c| (c.totals, c.mc, c.l3))
                    .collect::<Vec<_>>(),
            )
        };
        prop_assert_eq!(sig(&sim.run(&trace)), sig(&sim.run(&trace)));
    }
}
