//! Golden snapshot for the `repro offload --smoke` report: the full text
//! output — the Mallacc-vs-offload head-to-head, queue-depth sweep, fleet
//! streams and area/speedup Pareto table — must be byte-identical on
//! every run, on every host, and at every `--jobs` value.
//!
//! Snapshots live in `tests/golden/`. When an intentional model or
//! generator change shifts the report, regenerate with
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test offload_golden
//! ```
//!
//! and review the diff like any other code change — unintentional drift
//! in the helper-core timing or the head-to-head verdicts fails CI.

use std::path::PathBuf;

use mallacc_bench::offload_cli::{offload_report, OffloadArgs};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Compares `actual` against the named snapshot, regenerating it when
/// `UPDATE_GOLDEN` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {}: {e}\nrun UPDATE_GOLDEN=1 cargo test --test offload_golden",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "offload report drift against {}:\n--- expected ---\n{expected}\n--- actual ---\n{actual}\n\
         If this change is intentional, regenerate with UPDATE_GOLDEN=1.",
        path.display()
    );
}

fn smoke_args(jobs: usize) -> OffloadArgs {
    let args: Vec<String> = ["--smoke", "--jobs", &jobs.to_string()]
        .iter()
        .map(|a| a.to_string())
        .collect();
    OffloadArgs::parse(&args).unwrap()
}

#[test]
fn smoke_report_matches_snapshot() {
    let (code, text) = offload_report(&smoke_args(1));
    assert_eq!(code, 0, "smoke offload run must pass on main:\n{text}");
    assert_golden("offload_smoke.txt", &text);
}

#[test]
fn jobs_value_does_not_change_a_byte() {
    let (c1, seq) = offload_report(&smoke_args(1));
    let (c4, par) = offload_report(&smoke_args(4));
    assert_eq!((c1, c4), (0, 0));
    assert_eq!(seq, par, "--jobs must not change the report");
}

#[test]
fn smoke_head_to_head_has_wins_on_both_sides() {
    // The acceptance bar of the head-to-head: at least one workload where
    // the offload core beats Mallacc and at least one where it loses,
    // visible in the pinned smoke report itself.
    let (_, text) = offload_report(&smoke_args(1));
    let verdicts: Vec<&str> = text
        .lines()
        .take_while(|l| !l.starts_with("== offload queue-depth"))
        .filter_map(|l| l.split_whitespace().last())
        .collect();
    assert!(verdicts.contains(&"offload"), "no offload win:\n{text}");
    assert!(verdicts.contains(&"mallacc"), "no mallacc win:\n{text}");
}
