//! Property-based tests over the core invariants of the reproduction.

use proptest::prelude::*;

use mallacc::{AccelConfig, MallocSim, Mode};
use mallacc_tcmalloc::{SizeClasses, TcMalloc};
use mallacc_workloads::{Op, Trace};

/// Strategy: an arbitrary interleaving of mallocs (small and large),
/// frees, antagonism and app activity.
fn arb_ops(max_len: usize) -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        6 => (1u64..300_000).prop_map(|size| Op::Malloc { size }),
        3 => (any::<u64>(), any::<bool>()).prop_map(|(index, sized)| Op::Free { index, sized }),
        1 => any::<bool>().prop_map(|sized| Op::FreeNewest { sized }),
        1 => (0u16..=1000).prop_map(|per_mille| Op::Antagonize { per_mille }),
        1 => (0u32..20_000).prop_map(|quantum| Op::ContextSwitch { quantum }),
        1 => (0u32..2_000).prop_map(|cycles| Op::AppRun { cycles }),
        1 => (1u16..32, 64u32..4_096)
            .prop_map(|(lines, ws)| Op::AppTouch { lines, working_set_lines: ws }),
    ];
    prop::collection::vec(op, 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The accelerator never changes functional allocator behaviour: every
    /// mode walks the identical path sequence (same pool hits, refills,
    /// span allocations, frees) for any operation interleaving.
    #[test]
    fn modes_are_functionally_identical(ops in arb_ops(120)) {
        let trace: Trace = ops.into_iter().collect();
        let run = |mode: Mode| {
            let mut sim = MallocSim::new(mode);
            trace.replay(&mut sim);
            (sim.allocator().stats(), sim.allocator().live_blocks())
        };
        let base = run(Mode::Baseline);
        let accel = run(Mode::mallacc_default());
        let tiny = run(Mode::Mallacc(AccelConfig::with_entries(2)));
        let limit = run(Mode::limit_all());
        prop_assert_eq!(&base, &accel);
        prop_assert_eq!(&base, &tiny);
        prop_assert_eq!(&base, &limit);
    }

    /// Live allocations never overlap, for any malloc/free interleaving.
    #[test]
    fn live_allocations_never_overlap(ops in arb_ops(100)) {
        let mut a = TcMalloc::default();
        let mut live: Vec<(u64, u64)> = Vec::new();
        for op in ops {
            match op {
                Op::Malloc { size } => {
                    let o = a.malloc(size);
                    for &(p, s) in &live {
                        let disjoint = o.ptr + o.alloc_size <= p || p + s <= o.ptr;
                        prop_assert!(disjoint, "overlap at {:#x}", o.ptr);
                    }
                    live.push((o.ptr, o.alloc_size));
                }
                Op::Free { index, sized } if !live.is_empty() => {
                    let i = (index % live.len() as u64) as usize;
                    let (p, _) = live.swap_remove(i);
                    a.free(p, sized);
                }
                Op::FreeNewest { sized } => {
                    if let Some((p, _)) = live.pop() {
                        a.free(p, sized);
                    }
                }
                _ => {}
            }
        }
        prop_assert_eq!(a.live_blocks(), live.len());
    }

    /// malloc never hands out a block below the requested size, and the
    /// rounding is exactly the size-class table's.
    #[test]
    fn allocation_size_is_rounded_up(size in 1u64..300_000) {
        let sc = SizeClasses::tcmalloc_2007();
        let mut a = TcMalloc::default();
        let o = a.malloc(size);
        prop_assert!(o.alloc_size >= size);
        if let Some(cls) = o.cls {
            prop_assert_eq!(o.alloc_size, sc.class_to_size(cls));
        } else {
            prop_assert!(size > 256 * 1024);
        }
    }

    /// Call cycle accounting is internally consistent: per-kind cycles sum
    /// to the totals the simulator reports.
    #[test]
    fn cycle_accounting_balances(ops in arb_ops(80)) {
        let trace: Trace = ops.into_iter().collect();
        let mut sim = MallocSim::new(Mode::Baseline);
        let stats = trace.replay(&mut sim);
        let kind_total: u64 = stats.kind_cycles.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(kind_total, stats.totals.allocator_cycles());
        let kind_calls: u64 = stats.kind_counts.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(
            kind_calls,
            stats.totals.malloc_calls + stats.totals.free_calls
        );
    }

    /// Multi-threaded allocation preserves the no-overlap invariant and
    /// balances across caches for any producer/consumer interleaving.
    #[test]
    fn multithreaded_allocations_never_overlap(
        ops in prop::collection::vec((0usize..4, 1u64..4096, any::<bool>()), 1..200)
    ) {
        let mut a = TcMalloc::with_threads(Default::default(), 4);
        let mut live: Vec<(u64, u64)> = Vec::new();
        for (tid, size, do_free) in ops {
            let o = a.malloc_on(tid, size);
            for &(p, s) in &live {
                let disjoint = o.ptr + o.alloc_size <= p || p + s <= o.ptr;
                prop_assert!(disjoint, "overlap at {:#x}", o.ptr);
            }
            live.push((o.ptr, o.alloc_size));
            if do_free && !live.is_empty() {
                // Free from a *different* thread than allocated (migration).
                let (p, _) = live.swap_remove(size as usize % live.len());
                a.free_on((tid + 1) % 4, p, true);
            }
        }
        prop_assert_eq!(a.live_blocks(), live.len());
    }

    /// Serialisation round-trips every generatable trace.
    #[test]
    fn trace_text_round_trips(ops in arb_ops(100)) {
        let trace: Trace = ops.into_iter().collect();
        let text = mallacc_workloads::to_text(&trace);
        let back = mallacc_workloads::from_text(&text).expect("own output parses");
        prop_assert_eq!(back, trace);
    }

    /// Context switches (malloc-cache flushes) never change functional
    /// behaviour — §4.1's "no writebacks or correctness concerns".
    #[test]
    fn context_switches_are_functionally_invisible(ops in arb_ops(80)) {
        let with_switches: Trace = ops.iter().copied().flat_map(|op| {
            [op, Op::ContextSwitch { quantum: 1_000 }]
        }).collect();
        let without: Trace = ops.into_iter().collect();
        let run = |trace: &Trace| {
            let mut sim = MallocSim::new(Mode::mallacc_default());
            trace.replay(&mut sim);
            (sim.allocator().stats(), sim.allocator().live_blocks())
        };
        prop_assert_eq!(run(&with_switches), run(&without));
    }

    /// Replays are deterministic: identical traces on identical machines
    /// give identical cycle totals.
    #[test]
    fn replay_is_deterministic(ops in arb_ops(60)) {
        let trace: Trace = ops.into_iter().collect();
        let run = || {
            let mut sim = MallocSim::new(Mode::mallacc_default());
            trace.replay(&mut sim);
            (sim.totals(), sim.malloc_cache().stats())
        };
        prop_assert_eq!(run(), run());
    }

    /// Every simulated malloc/free reports stall-reason cycles that sum
    /// *exactly* to its latency, for any operation interleaving and in
    /// every mode — and the profiled op cycles re-derive the driver's own
    /// totals, so the attribution can never drift from the headline
    /// numbers.
    #[test]
    fn stall_attribution_conserves_every_call(ops in arb_ops(90)) {
        let trace: Trace = ops.into_iter().collect();
        for mode in [Mode::Baseline, Mode::mallacc_default(), Mode::limit_all()] {
            let mut sim = MallocSim::new(mode);
            sim.attach_tracer(Box::new(mallacc_prof::Profiler::new(0)));
            trace.replay(&mut sim);
            let p = mallacc_prof::Profiler::from_sink(
                sim.detach_tracer().expect("tracer attached"),
            )
            .expect("profiler comes back");
            prop_assert_eq!(p.conservation_violations(), 0);
            let mut in_ops = 0u64;
            for op in p.ops() {
                prop_assert_eq!(
                    op.stall.total(), op.cycles(),
                    "op {} start {} end {}", &op.name, op.start, op.end
                );
                in_ops += op.cycles();
            }
            prop_assert_eq!(in_ops, sim.totals().allocator_cycles());
        }
    }

    /// Attaching a tracer is observation-only: with or without one, every
    /// simulated cycle count is identical.
    #[test]
    fn tracing_never_changes_simulated_time(ops in arb_ops(80)) {
        let trace: Trace = ops.into_iter().collect();
        for mode in [Mode::Baseline, Mode::mallacc_default()] {
            let run = |traced: bool| {
                let mut sim = MallocSim::new(mode);
                if traced {
                    sim.attach_tracer(Box::new(mallacc_prof::Profiler::new(0)));
                }
                trace.replay(&mut sim);
                (sim.totals(), sim.malloc_cache().stats(), sim.cpi_stack())
            };
            prop_assert_eq!(run(false), run(true));
        }
    }
}
