//! Golden snapshot for the `repro validate --smoke` report: the full text
//! output must be byte-identical on every run, on every host, and at
//! every `--jobs` value.
//!
//! Snapshots live in `tests/golden/`. When an intentional model or
//! generator change shifts the report, regenerate with
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test validate_golden
//! ```
//!
//! and review the diff like any other code change — unintentional drift
//! in the oracle numbers or the fuzz corpus fails CI.

use std::path::PathBuf;

use mallacc_bench::validate_cli::{validate_report, ValidateArgs};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Compares `actual` against the named snapshot, regenerating it when
/// `UPDATE_GOLDEN` is set.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {}: {e}\nrun UPDATE_GOLDEN=1 cargo test --test validate_golden",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "validation drift against {}:\n--- expected ---\n{expected}\n--- actual ---\n{actual}\n\
         If this change is intentional, regenerate with UPDATE_GOLDEN=1.",
        path.display()
    );
}

fn smoke_args(jobs: usize) -> ValidateArgs {
    ValidateArgs {
        jobs,
        ..ValidateArgs::default()
    }
}

#[test]
fn smoke_report_matches_snapshot_and_passes() {
    let (code, text) = validate_report(&smoke_args(1));
    assert_eq!(code, 0, "smoke validation must pass on main:\n{text}");
    assert_golden("validate_smoke.txt", &text);
}

#[test]
fn substrate_table_matches_snapshot() {
    // The substrate-conformance section gets its own snapshot so drift
    // in the allocator-law corpus is visible independently of the
    // (much larger) full report.
    let (code, text) = validate_report(&smoke_args(1));
    assert_eq!(code, 0, "{text}");
    let section: String = text
        .split("== ")
        .find(|s| s.starts_with("substrate conformance"))
        .map(|s| format!("== {s}"))
        .expect("report has a substrate section");
    assert_golden("validate_substrate_table.txt", &section);
}

#[test]
fn jobs_value_does_not_change_a_byte() {
    let (c1, seq) = validate_report(&smoke_args(1));
    let (c4, par) = validate_report(&smoke_args(4));
    assert_eq!((c1, c4), (0, 0));
    assert_eq!(seq, par, "--jobs must not change the report");
}
